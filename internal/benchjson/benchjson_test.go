package benchjson

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
)

func sample() *Report {
	r := New()
	r.Add("bsw", "align",
		Metrics{Name: "bsw/align/scalar", NsPerOp: 110000, AllocsPerOp: 2, Iterations: 100},
		Metrics{Name: "bsw/align/packed", NsPerOp: 62000, AllocsPerOp: 0, Iterations: 100})
	r.Add("phmm", "region",
		Metrics{Name: "phmm/region/alloc", NsPerOp: 500000, AllocsPerOp: 338, Iterations: 50},
		Metrics{Name: "phmm/region/pooled", NsPerOp: 480000, AllocsPerOp: 0, Iterations: 50})
	return r
}

func TestRoundTrip(t *testing.T) {
	r := sample()
	var buf bytes.Buffer
	if err := Write(&buf, r); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema != Schema || len(got.Entries) != 2 {
		t.Fatalf("round trip: %+v", got)
	}
	e := got.Find("bsw", "align")
	if e == nil || e.Optimized.NsPerOp != 62000 || e.Baseline.AllocsPerOp != 2 {
		t.Fatalf("entry mangled: %+v", e)
	}
	if e.Speedup < 1.7 || e.Speedup > 1.8 {
		t.Fatalf("speedup = %v, want ~1.77", e.Speedup)
	}
}

// TestHostSIMDRoundTrips pins the host stamp's SIMD field through
// Write/Read: a record measured with the SIMD tier overridden must
// keep saying so, and pre-field reports (no "simd" key) must still
// parse with the stamp simply empty.
func TestHostSIMDRoundTrips(t *testing.T) {
	r := sample()
	r.Host = &Host{OS: "linux", Arch: "amd64", NumCPU: 4, GOMAXPROCS: 4,
		SIMD: "sse2+avx2 (GBENCH_SIMD=off)"}
	var buf bytes.Buffer
	if err := Write(&buf, r); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"simd"`) {
		t.Fatalf("simd field missing from serialized report:\n%s", buf.String())
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Host == nil || got.Host.SIMD != r.Host.SIMD {
		t.Fatalf("SIMD stamp mangled: %+v", got.Host)
	}
	pre, err := Read(strings.NewReader(`{"schema":"gbench-bench/v1",` +
		`"host":{"os":"linux","arch":"amd64","num_cpu":1,"gomaxprocs":1},` +
		`"entries":[{"kernel":"bsw","pair":"align",` +
		`"baseline":{"name":"b","ns_per_op":2},"optimized":{"name":"o","ns_per_op":1},"speedup":2}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if pre.Host.SIMD != "" {
		t.Fatalf("pre-field report grew a SIMD stamp: %q", pre.Host.SIMD)
	}
}

func TestReadRejectsWrongSchema(t *testing.T) {
	if _, err := Read(strings.NewReader(`{"schema":"other/v9","entries":[]}`)); err == nil {
		t.Fatal("wrong schema accepted")
	}
	if _, err := Read(strings.NewReader(`not json`)); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestWriteStableOrder(t *testing.T) {
	r := New()
	r.Add("poa", "consensus", Metrics{NsPerOp: 1}, Metrics{NsPerOp: 1})
	r.Add("abea", "align", Metrics{NsPerOp: 1}, Metrics{NsPerOp: 1})
	var buf bytes.Buffer
	if err := Write(&buf, r); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	if strings.Index(s, `"abea"`) > strings.Index(s, `"poa"`) {
		t.Fatalf("entries not sorted by kernel:\n%s", s)
	}
}

func TestCompareClean(t *testing.T) {
	base := sample()
	cur := sample()
	// Slightly slower, within tolerance.
	cur.Find("bsw", "align").Optimized.NsPerOp = 70000
	if regs := Compare(base, cur, 1.25); len(regs) != 0 {
		t.Fatalf("unexpected regressions: %v", regs)
	}
}

func TestCompareFlagsSlowdown(t *testing.T) {
	base := sample()
	cur := sample()
	cur.Find("bsw", "align").Optimized.NsPerOp = 200000 // > 1.25x of 62000
	regs := Compare(base, cur, 1.25)
	if len(regs) != 1 || regs[0].Kernel != "bsw" || regs[0].Pair != "align" {
		t.Fatalf("regressions = %v", regs)
	}
	// The same slowdown passes under a generous CI-smoke tolerance.
	if regs := Compare(base, cur, 10); len(regs) != 0 {
		t.Fatalf("generous tolerance still flagged: %v", regs)
	}
}

func TestCompareFlagsMissingPair(t *testing.T) {
	base := sample()
	cur := New()
	cur.Entries = append(cur.Entries, base.Entries[0])
	regs := Compare(base, cur, 10)
	if len(regs) != 1 || !strings.Contains(regs[0].String(), "missing") {
		t.Fatalf("regressions = %v", regs)
	}
}

func TestReadRejectsDuplicatePairs(t *testing.T) {
	r := sample()
	r.Entries = append(r.Entries, r.Entries[0])
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	if err := enc.Encode(r); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(&buf); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("duplicate (kernel, pair) accepted: %v", err)
	}
}

func TestReadRejectsNonPositiveNs(t *testing.T) {
	// A zero optimized ns_per_op is the root of every NaN/Inf speedup
	// a downstream trend computation could produce; it must not parse.
	in := `{"schema":"gbench-bench/v1","entries":[{"kernel":"k","pair":"p",
	 "baseline":{"name":"b","ns_per_op":100},
	 "optimized":{"name":"o","ns_per_op":0},"speedup":0}]}`
	if _, err := Read(strings.NewReader(in)); err == nil || !strings.Contains(err.Error(), "finite positive") {
		t.Fatalf("zero ns_per_op accepted: %v", err)
	}
}

func TestValidateRejectsNonFiniteSpeedup(t *testing.T) {
	r := sample()
	r.Entries[0].Speedup = math.Inf(1)
	if err := r.Validate(); err == nil {
		t.Fatal("Inf speedup accepted")
	}
	r.Entries[0].Speedup = math.NaN()
	if err := r.Validate(); err == nil {
		t.Fatal("NaN speedup accepted")
	}
}

func TestCompareGatesSpeedupRatio(t *testing.T) {
	// Baseline and optimized slowed equally: the absolute gate alone
	// would pass this silently; the committed record's pairing means
	// BOTH variants slowing is still a regression worth failing.
	base := sample()
	cur := sample()
	e := cur.Find("bsw", "align")
	e.Baseline.NsPerOp *= 4
	e.Optimized.NsPerOp *= 4
	// Ratio intact, absolute ns 4x over: ns gate fires at 1.25.
	regs := Compare(base, cur, 1.25)
	if len(regs) != 1 || !strings.Contains(regs[0].Reason, "optimized path slowed") {
		t.Fatalf("equal slowdown passed: %v", regs)
	}
	// Conversely: absolute ns fine, ratio collapsed (baseline sped up
	// 4x while optimized held). The ratio gate fires.
	cur = sample()
	e = cur.Find("bsw", "align")
	e.Baseline.NsPerOp /= 4
	e.Speedup = e.Baseline.NsPerOp / e.Optimized.NsPerOp
	regs = Compare(base, cur, 1.25)
	if len(regs) != 1 || !strings.Contains(regs[0].Reason, "speedup shrank") {
		t.Fatalf("ratio collapse passed: %v", regs)
	}
}

func TestCompareDetailedSkipsUnexercisableThreadPairs(t *testing.T) {
	mk := func(host *Host) *Report {
		r := New()
		r.Host = host
		r.Entries = append(r.Entries, Entry{
			Kernel: "grm", Pair: "threads", Threads: 4,
			Baseline:  Metrics{Name: "grm/threads/t1", NsPerOp: 1000, Iterations: 1},
			Optimized: Metrics{Name: "grm/threads/t4", NsPerOp: 1000, Iterations: 1},
			Speedup:   1,
		})
		return r
	}
	base := mk(nil)
	cur := mk(&Host{OS: "linux", Arch: "amd64", NumCPU: 1, GOMAXPROCS: 1})
	cur.Entries[0].Optimized.NsPerOp = 50000 // would fail both gates
	cur.Entries[0].Speedup = 0.02
	res := CompareDetailed(base, cur, CompareOptions{NsTolerance: 1.25, SpeedupTolerance: 1.25})
	if len(res.Regressions) != 0 {
		t.Fatalf("one-core thread pair judged: %+v", res.Regressions)
	}
	if len(res.Skipped) != 1 || !strings.Contains(res.Skipped[0].String(), "cores") {
		t.Fatalf("skipped = %+v", res.Skipped)
	}
	// A capable host is judged normally.
	cur.Host = &Host{OS: "linux", Arch: "amd64", NumCPU: 8, GOMAXPROCS: 8}
	res = CompareDetailed(base, cur, CompareOptions{NsTolerance: 1.25, SpeedupTolerance: 1.25})
	if len(res.Skipped) != 0 || len(res.Regressions) != 1 {
		t.Fatalf("capable host: %+v", res)
	}
}

func TestThreadCountParsesLegacyNames(t *testing.T) {
	e := Entry{Optimized: Metrics{Name: "pileup/threads/t4"}}
	if e.ThreadCount() != 4 {
		t.Fatalf("ThreadCount = %d, want 4 from name", e.ThreadCount())
	}
	e = Entry{Threads: 8, Optimized: Metrics{Name: "pileup/threads/t4"}}
	if e.ThreadCount() != 8 {
		t.Fatalf("ThreadCount = %d, want recorded field to win", e.ThreadCount())
	}
	e = Entry{Optimized: Metrics{Name: "bsw/align/packed"}}
	if e.ThreadCount() != 0 {
		t.Fatalf("ThreadCount = %d, want 0 for non-thread pair", e.ThreadCount())
	}
}

func TestCompareClampsTolerance(t *testing.T) {
	base := sample()
	cur := sample()
	// tolerance < 1 is clamped to 1: equal timings must still pass.
	if regs := Compare(base, cur, 0.5); len(regs) != 0 {
		t.Fatalf("clamped tolerance flagged equal reports: %v", regs)
	}
}
