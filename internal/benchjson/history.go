// Bench history: an append-only NDJSON trajectory of reports, one per
// PR, and the trend analysis over it. A single committed baseline can
// only say "no worse than last time"; the trajectory says "no worse
// than we have ever shown this kernel to run", which is the claim a
// benchmark suite actually makes. The committed BENCH_PR3->PR5 files
// already contained drift the single-baseline gate never flagged
// (pileup/count 1.43x -> 1.13x); TrendGate exists to fail on exactly
// that shape.
package benchjson

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
)

// AppendHistory validates r and appends it to the NDJSON file at path
// as one compact line, creating the file if needed. History records
// should carry Label and Host; the trend gate groups by host class.
func AppendHistory(path string, r *Report) error {
	if err := r.Validate(); err != nil {
		return fmt.Errorf("benchjson: refusing to append invalid record: %w", err)
	}
	sortEntries(r)
	line, err := json.Marshal(r)
	if err != nil {
		return err
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	end, err := healTail(f)
	if err != nil {
		return err
	}
	if _, err := f.WriteAt(append(line, '\n'), end); err != nil {
		return err
	}
	return f.Close()
}

// healTail returns the offset appends should start at. A file whose
// last byte is not '\n' holds a partial record from a write that died
// mid-line; gluing a new record onto it would corrupt BOTH lines, so
// the partial tail is cut back to the last complete line instead —
// the only spot an append-only file legitimately self-repairs.
func healTail(f *os.File) (int64, error) {
	st, err := f.Stat()
	if err != nil {
		return 0, err
	}
	size := st.Size()
	if size == 0 {
		return 0, nil
	}
	// Walk back in chunks until the last newline is found.
	buf := make([]byte, 64*1024)
	pos := size
	for pos > 0 {
		n := int64(len(buf))
		if n > pos {
			n = pos
		}
		if _, err := f.ReadAt(buf[:n], pos-n); err != nil {
			return 0, err
		}
		if pos == size && buf[n-1] == '\n' {
			return size, nil // clean tail, append at the end
		}
		for i := n - 1; i >= 0; i-- {
			if buf[i] == '\n' {
				cut := pos - n + i + 1
				return cut, f.Truncate(cut)
			}
		}
		pos -= n
	}
	// No newline at all: the whole file is one partial line.
	return 0, f.Truncate(0)
}

// ReadHistory parses an NDJSON history stream in order. A malformed or
// invalid final line is dropped and reported via dropped — the
// recovery path for a truncated append (process killed mid-write);
// the appender's next run simply rewrites it. A malformed line
// anywhere earlier is a hard error: middles of append-only files do
// not truncate themselves, so that is corruption worth stopping on.
func ReadHistory(rd io.Reader) (records []*Report, dropped bool, err error) {
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 0, 64*1024), 8*1024*1024)
	var pendingErr error
	line := 0
	for sc.Scan() {
		text := sc.Bytes()
		if len(trimSpaceBytes(text)) == 0 {
			continue
		}
		line++
		if pendingErr != nil {
			// The bad line was not the last one after all.
			return nil, false, pendingErr
		}
		var r Report
		if e := json.Unmarshal(text, &r); e != nil {
			pendingErr = fmt.Errorf("benchjson: history line %d: %w", line, e)
			continue
		}
		if e := r.Validate(); e != nil {
			pendingErr = fmt.Errorf("benchjson: history line %d: %w", line, e)
			continue
		}
		records = append(records, &r)
	}
	if err := sc.Err(); err != nil {
		return nil, false, fmt.Errorf("benchjson: history: %w", err)
	}
	return records, pendingErr != nil, nil
}

func trimSpaceBytes(b []byte) []byte {
	for len(b) > 0 && (b[0] == ' ' || b[0] == '\t' || b[0] == '\r') {
		b = b[1:]
	}
	for len(b) > 0 && (b[len(b)-1] == ' ' || b[len(b)-1] == '\t' || b[len(b)-1] == '\r') {
		b = b[:len(b)-1]
	}
	return b
}

// ReadHistoryFile is ReadHistory over a file path.
func ReadHistoryFile(path string) (records []*Report, dropped bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, false, err
	}
	defer f.Close()
	return ReadHistory(f)
}

// Trend is one pair's trajectory within one host class: parallel
// slices of per-record labels, speedups and optimized ns/op, in
// history order.
type Trend struct {
	Kernel, Pair string
	HostKey      string // "" when records carry no host
	Threads      int    // thread count for */threads pairs, else 0
	Skipped      bool   // thread pair the host class cannot exercise
	Labels       []string
	Speedups     []float64
	OptNs        []float64
}

// First, Best and Last summarize the speedup trajectory.
func (t *Trend) First() float64 { return t.Speedups[0] }
func (t *Trend) Last() float64  { return t.Speedups[len(t.Speedups)-1] }
func (t *Trend) Best() float64 {
	best := t.Speedups[0]
	for _, s := range t.Speedups[1:] {
		if s > best {
			best = s
		}
	}
	return best
}

// BestNs returns the fastest optimized ns/op ever recorded.
func (t *Trend) BestNs() float64 {
	best := t.OptNs[0]
	for _, v := range t.OptNs[1:] {
		if v < best {
			best = v
		}
	}
	return best
}

// DriftPct is how far the latest speedup sits below the best ever, as
// a percentage (positive = regressed, 0 = at best).
func (t *Trend) DriftPct() float64 {
	best := t.Best()
	if best <= 0 {
		return 0
	}
	return 100 * (best - t.Last()) / best
}

// hostKeyOf allows grouping records with and without host stamps.
func hostKeyOf(r *Report) string {
	if r.Host == nil {
		return ""
	}
	return r.Host.Key()
}

// labelOf falls back to a positional label for unstamped records.
func labelOf(r *Report, i int) string {
	if r.Label != "" {
		return r.Label
	}
	return fmt.Sprintf("#%d", i+1)
}

// Trends builds every pair's trajectory from history records, grouped
// by host class: speedups measured on different hardware are not one
// curve, so a host change starts a new trajectory rather than
// manufacturing a fake regression (or masking a real one). Trends are
// ordered by host key, then kernel, then pair.
func Trends(history []*Report) []*Trend {
	type key struct{ host, kernel, pair string }
	byKey := map[key]*Trend{}
	var order []key
	for i, r := range history {
		hk := hostKeyOf(r)
		label := labelOf(r, i)
		for j := range r.Entries {
			e := &r.Entries[j]
			k := key{hk, e.Kernel, e.Pair}
			t := byKey[k]
			if t == nil {
				t = &Trend{Kernel: e.Kernel, Pair: e.Pair, HostKey: hk, Threads: e.ThreadCount()}
				if tc := e.ThreadCount(); tc > 1 && r.Host != nil && r.Host.NumCPU < tc {
					t.Skipped = true
				}
				byKey[k] = t
				order = append(order, k)
			}
			t.Labels = append(t.Labels, label)
			t.Speedups = append(t.Speedups, e.Speedup)
			t.OptNs = append(t.OptNs, e.Optimized.NsPerOp)
		}
	}
	out := make([]*Trend, 0, len(order))
	for _, k := range order {
		out = append(out, byKey[k])
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].HostKey != out[j].HostKey {
			return out[i].HostKey < out[j].HostKey
		}
		if out[i].Kernel != out[j].Kernel {
			return out[i].Kernel < out[j].Kernel
		}
		return out[i].Pair < out[j].Pair
	})
	return out
}

// TrendOptions tunes TrendGate. Zero values take the defaults.
type TrendOptions struct {
	// BelowBest fails a pair whose latest speedup sits more than this
	// fraction below its best-ever (default 0.18).
	BelowBest float64
	// NsAboveBest is the corroboration margin: a speedup drift only
	// fails when the optimized path's own ns/op is also worse than its
	// best-ever by more than this fraction (default 0.15). A ratio can
	// collapse because the *baseline* got faster — a compiler upgrade,
	// a measurement on a lighter-loaded box — and that is not an
	// optimized-path regression; without corroboration it is reported
	// as a warning, not a failure. The committed history holds a live
	// specimen: pileup/count fell 1.43x -> 1.13x with the packed path
	// itself 18% over its best (real, fails), while a later record
	// shows a sub-best ratio with the packed path at a record low
	// (baseline movement, warns).
	NsAboveBest float64
	// MonotoneK fails a pair whose speedup has strictly decreased over
	// its last K same-host records (default 3), with the same ns
	// corroboration, catching slow bleed before it exceeds BelowBest.
	MonotoneK int
	// MonotoneMin is the cumulative decline over the K-window below
	// which a monotone slide is ignored as noise (default 0.05).
	MonotoneMin float64
}

func (o TrendOptions) withDefaults() TrendOptions {
	if o.BelowBest <= 0 {
		o.BelowBest = 0.18
	}
	if o.NsAboveBest <= 0 {
		o.NsAboveBest = 0.15
	}
	if o.MonotoneK <= 0 {
		o.MonotoneK = 3
	}
	if o.MonotoneMin <= 0 {
		o.MonotoneMin = 0.05
	}
	return o
}

// TrendVerdict is TrendGate's outcome: hard failures, uncorroborated
// drifts worth reading (warnings), and pairs skipped as meaningless on
// their host class.
type TrendVerdict struct {
	Failures []Regression
	Warnings []Regression
	Skipped  []Skip
}

// TrendGate judges the newest record of each host class against that
// class's earlier records. Only the latest record can fail the gate —
// history is immutable context, not something to re-litigate — so CI
// appends the fresh record and gates it in one step. Pairs appearing
// for the first time in their host class pass vacuously (they ARE the
// trend now). Thread pairs the host cannot exercise are skipped.
func TrendGate(history []*Report, opt TrendOptions) TrendVerdict {
	opt = opt.withDefaults()
	var v TrendVerdict
	if len(history) == 0 {
		return v
	}
	last := history[len(history)-1]
	lastKey := hostKeyOf(last)
	for _, t := range Trends(history) {
		if t.HostKey != lastKey || t.Labels[len(t.Labels)-1] != labelOf(last, len(history)-1) {
			continue // pair absent from the newest record, or other host class
		}
		if last.Find(t.Kernel, t.Pair) == nil {
			continue // positional-label collision guard; gate only real entries
		}
		if t.Skipped {
			v.Skipped = append(v.Skipped, Skip{t.Kernel, t.Pair, fmt.Sprintf(
				"thread pair needs %d cores, host %s cannot exercise it", t.Threads, t.HostKey)})
			continue
		}
		if len(t.Speedups) < 2 {
			continue
		}
		lastS, bestS := t.Last(), t.Best()
		lastNs, bestNs := t.OptNs[len(t.OptNs)-1], t.BestNs()
		nsCorroborated := bestNs > 0 && lastNs > bestNs*(1+opt.NsAboveBest)
		var reasons, warns []string
		if bestS > 0 && lastS < bestS*(1-opt.BelowBest) {
			msg := fmt.Sprintf("speedup %.2fx is %.0f%% below best-ever %.2fx",
				lastS, t.DriftPct(), bestS)
			if nsCorroborated {
				reasons = append(reasons, fmt.Sprintf(
					"%s and optimized path is %.0f%% over its best %.0fns/op",
					msg, 100*(lastNs-bestNs)/bestNs, bestNs))
			} else {
				warns = append(warns, msg+" but optimized ns/op holds; baseline-side movement")
			}
		}
		if k := opt.MonotoneK; len(t.Speedups) >= k {
			w := t.Speedups[len(t.Speedups)-k:]
			monotone := true
			for i := 1; i < len(w); i++ {
				if !(w[i] < w[i-1]) {
					monotone = false
					break
				}
			}
			decline := 0.0
			if w[0] > 0 {
				decline = (w[0] - w[len(w)-1]) / w[0]
			}
			if monotone && decline >= opt.MonotoneMin {
				msg := fmt.Sprintf("speedup fell monotonically over last %d records (%.2fx -> %.2fx)",
					k, w[0], w[len(w)-1])
				if nsCorroborated {
					reasons = append(reasons, msg)
				} else {
					warns = append(warns, msg+" but optimized ns/op holds")
				}
			}
		}
		for _, r := range reasons {
			v.Failures = append(v.Failures, Regression{t.Kernel, t.Pair, r})
		}
		for _, w := range warns {
			v.Warnings = append(v.Warnings, Regression{t.Kernel, t.Pair, w})
		}
	}
	return v
}

// Sparkline renders values as a compact unicode bar strip for trend
// tables, scaled to the series' own min/max. A flat series renders as
// mid-height bars; NaN-safe.
func Sparkline(vals []float64) string {
	const ramp = "▁▂▃▄▅▆▇█"
	runes := []rune(ramp)
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range vals {
		if math.IsNaN(v) {
			continue
		}
		lo, hi = math.Min(lo, v), math.Max(hi, v)
	}
	if math.IsInf(lo, 1) {
		return ""
	}
	out := make([]rune, 0, len(vals))
	for _, v := range vals {
		if math.IsNaN(v) {
			out = append(out, ' ')
			continue
		}
		idx := len(runes) / 2
		if hi > lo {
			idx = int((v - lo) / (hi - lo) * float64(len(runes)-1))
		}
		out = append(out, runes[idx])
	}
	return string(out)
}
