package benchjson

import (
	"testing"
)

// TestTrendGateOnCommittedHistory pins the gate to the repository's
// own BENCH_HISTORY.ndjson: the motivating specimen for this entire
// subsystem. The PR3->PR5 prefix contains the silent pileup/count
// drift (1.43x -> 1.13x with the packed path itself 18% over its best
// ns/op) that the single-baseline compare gate never flagged — the
// gate must fail on that trajectory. The full history ends with the
// post-fix record, where the packed path is back at a record-low
// ns/op and the residual ratio shrink is baseline-side movement — the
// gate must pass it (warnings allowed, failures not).
func TestTrendGateOnCommittedHistory(t *testing.T) {
	records, dropped, err := ReadHistoryFile("../../BENCH_HISTORY.ndjson")
	if err != nil {
		t.Fatalf("committed history unreadable: %v", err)
	}
	if dropped {
		t.Fatal("committed history has a truncated trailing record")
	}
	if len(records) < 4 {
		t.Fatalf("committed history holds %d records, want PR3..PR5 plus the current PR", len(records))
	}

	find := func(regs []Regression, kernel, pair string) *Regression {
		for i := range regs {
			if regs[i].Kernel == kernel && regs[i].Pair == pair {
				return &regs[i]
			}
		}
		return nil
	}

	// The historical prefix: PR5 is the newest record, judged against
	// PR3 and PR4. pileup/count must fail — that is the drift this PR
	// exists to catch.
	prefix := records[:3]
	if got := prefix[len(prefix)-1].Label; got != "PR5" {
		t.Fatalf("prefix ends at %q, want PR5", got)
	}
	v := TrendGate(prefix, TrendOptions{})
	if find(v.Failures, "pileup", "count") == nil {
		t.Fatalf("gate passed the historical pileup/count drift; failures = %v", v.Failures)
	}

	// The full history: the newest record carries the cutover fix and
	// a record-low packed ns/op, so pileup/count must no longer fail.
	v = TrendGate(records, TrendOptions{})
	if f := find(v.Failures, "pileup", "count"); f != nil {
		t.Fatalf("gate still fails pileup/count after the fix: %v", *f)
	}
	// The residual ratio shrink is real but uncorroborated — it must
	// surface as a warning, not vanish.
	if find(v.Warnings, "pileup", "count") == nil {
		t.Fatalf("baseline-side pileup/count movement not even warned; warnings = %v", v.Warnings)
	}
	// The 1-core measurement host cannot exercise the t4 thread pairs;
	// they must be reported as skipped, not judged.
	for _, pair := range []string{"chain", "grm", "pileup"} {
		found := false
		for _, s := range v.Skipped {
			if s.Kernel == pair && s.Pair == "threads" {
				found = true
			}
		}
		if !found {
			t.Fatalf("%s/threads not skipped on 1-core host; skipped = %v", pair, v.Skipped)
		}
	}
}
