package benchjson

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// histReport builds one history record on the given host with the
// given (kernel/pair -> baseline ns, optimized ns) measurements.
func histReport(label string, host *Host, pairs map[string][2]float64) *Report {
	r := New()
	r.Label = label
	r.Host = host
	for kp, ns := range pairs {
		parts := strings.SplitN(kp, "/", 2)
		r.Add(parts[0], parts[1],
			Metrics{Name: kp + "/base", NsPerOp: ns[0], Iterations: 10},
			Metrics{Name: kp + "/opt", NsPerOp: ns[1], Iterations: 10})
	}
	sortEntries(r)
	return r
}

var oneCore = &Host{OS: "linux", Arch: "amd64", NumCPU: 1, GOMAXPROCS: 1}

func TestHistoryAppendReadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "hist.ndjson")
	r1 := histReport("PR3", oneCore, map[string][2]float64{"bsw/align": {100, 50}})
	r2 := histReport("PR4", oneCore, map[string][2]float64{"bsw/align": {100, 52}, "poa/lanes": {300, 100}})
	for _, r := range []*Report{r1, r2} {
		if err := AppendHistory(path, r); err != nil {
			t.Fatal(err)
		}
	}
	recs, dropped, err := ReadHistoryFile(path)
	if err != nil || dropped {
		t.Fatalf("read: err=%v dropped=%v", err, dropped)
	}
	if len(recs) != 2 || recs[0].Label != "PR3" || recs[1].Label != "PR4" {
		t.Fatalf("records mangled: %+v", recs)
	}
	if e := recs[1].Find("poa", "lanes"); e == nil || e.Speedup != 3 {
		t.Fatalf("entry mangled: %+v", e)
	}
	if recs[0].Host == nil || recs[0].Host.Key() != "linux/amd64/c1" {
		t.Fatalf("host mangled: %+v", recs[0].Host)
	}
}

func TestAppendHistoryRejectsInvalid(t *testing.T) {
	path := filepath.Join(t.TempDir(), "hist.ndjson")
	bad := histReport("PR3", oneCore, map[string][2]float64{"bsw/align": {100, 50}})
	bad.Entries = append(bad.Entries, bad.Entries[0]) // duplicate pair
	if err := AppendHistory(path, bad); err == nil {
		t.Fatal("duplicate pair appended")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("invalid record touched the file")
	}
}

func TestReadHistoryRecoversTruncatedTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "hist.ndjson")
	good := histReport("PR3", oneCore, map[string][2]float64{"bsw/align": {100, 50}})
	if err := AppendHistory(path, good); err != nil {
		t.Fatal(err)
	}
	// Simulate a write killed mid-record: a half JSON line at the tail.
	f, _ := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	f.WriteString(`{"schema":"gbench-bench/v1","label":"PR4","entries":[{"kern`)
	f.Close()
	recs, dropped, err := ReadHistoryFile(path)
	if err != nil {
		t.Fatalf("truncated tail not recovered: %v", err)
	}
	if !dropped || len(recs) != 1 || recs[0].Label != "PR3" {
		t.Fatalf("recovery wrong: dropped=%v recs=%+v", dropped, recs)
	}
	// The appender self-heals: the partial tail is cut back to the
	// last complete line, so the next record lands intact and the file
	// reads clean again.
	if err := AppendHistory(path, histReport("PR4", oneCore, map[string][2]float64{"bsw/align": {100, 51}})); err != nil {
		t.Fatal(err)
	}
	recs, dropped, err = ReadHistoryFile(path)
	if err != nil || dropped {
		t.Fatalf("after healing append: err=%v dropped=%v", err, dropped)
	}
	if len(recs) != 2 || recs[1].Label != "PR4" {
		t.Fatalf("healed history wrong: %+v", recs)
	}
}

func TestReadHistoryMidFileCorruptionIsFatal(t *testing.T) {
	in := `{"schema":"gbench-bench/v1","label":"A","entries":[]}
garbage line
{"schema":"gbench-bench/v1","label":"B","entries":[]}
`
	if _, _, err := ReadHistory(strings.NewReader(in)); err == nil {
		t.Fatal("corrupt middle line accepted")
	}
}

func TestReadHistoryInvalidEntryTailDropped(t *testing.T) {
	// Parseable JSON whose record fails validation (zero ns_per_op)
	// is treated like any other bad tail line.
	in := `{"schema":"gbench-bench/v1","label":"A","entries":[]}
{"schema":"gbench-bench/v1","label":"B","entries":[{"kernel":"x","pair":"y","baseline":{"ns_per_op":0},"optimized":{"ns_per_op":1},"speedup":0}]}
`
	recs, dropped, err := ReadHistory(strings.NewReader(in))
	if err != nil || !dropped || len(recs) != 1 {
		t.Fatalf("err=%v dropped=%v recs=%d", err, dropped, len(recs))
	}
}

func TestTrendsGroupByHostAndSummarize(t *testing.T) {
	otherHost := &Host{OS: "linux", Arch: "amd64", NumCPU: 8, GOMAXPROCS: 8}
	hist := []*Report{
		histReport("PR3", oneCore, map[string][2]float64{"bsw/align": {200, 100}}),
		histReport("PR4", oneCore, map[string][2]float64{"bsw/align": {200, 125}}),
		histReport("PR5", otherHost, map[string][2]float64{"bsw/align": {200, 80}}),
	}
	trends := Trends(hist)
	if len(trends) != 2 {
		t.Fatalf("trends = %d, want 2 host-class trajectories", len(trends))
	}
	var one *Trend
	for _, tr := range trends {
		if tr.HostKey == "linux/amd64/c1" {
			one = tr
		}
	}
	if one == nil || len(one.Speedups) != 2 {
		t.Fatalf("one-core trend missing: %+v", trends)
	}
	if one.First() != 2.0 || one.Best() != 2.0 || one.Last() != 1.6 {
		t.Fatalf("summary wrong: first %v best %v last %v", one.First(), one.Best(), one.Last())
	}
	if math.Abs(one.DriftPct()-20) > 1e-9 {
		t.Fatalf("drift = %v, want 20%%", one.DriftPct())
	}
}

// TestTrendGateMonotoneDrift drives the gate over a synthetic
// monotone slide with the optimized path itself regressing: both the
// below-best and monotone rules must fire.
func TestTrendGateMonotoneDrift(t *testing.T) {
	hist := []*Report{
		histReport("P1", oneCore, map[string][2]float64{"k/p": {1000, 500}}), // 2.00x, 500ns
		histReport("P2", oneCore, map[string][2]float64{"k/p": {1000, 550}}), // 1.82x
		histReport("P3", oneCore, map[string][2]float64{"k/p": {1000, 610}}), // 1.64x
		histReport("P4", oneCore, map[string][2]float64{"k/p": {1000, 700}}), // 1.43x, 40% over best ns
	}
	v := TrendGate(hist, TrendOptions{})
	if len(v.Failures) == 0 {
		t.Fatalf("monotone corroborated drift passed: %+v", v)
	}
	joined := ""
	for _, f := range v.Failures {
		joined += f.String() + "\n"
	}
	if !strings.Contains(joined, "below best-ever") || !strings.Contains(joined, "monotonically") {
		t.Fatalf("expected both rules to fire:\n%s", joined)
	}
}

// TestTrendGateNoisyButStable: a trajectory that wobbles inside the
// tolerance band must pass untouched.
func TestTrendGateNoisyButStable(t *testing.T) {
	hist := []*Report{
		histReport("P1", oneCore, map[string][2]float64{"k/p": {1000, 500}}), // 2.00x
		histReport("P2", oneCore, map[string][2]float64{"k/p": {1000, 540}}), // 1.85x
		histReport("P3", oneCore, map[string][2]float64{"k/p": {1000, 510}}), // 1.96x
		histReport("P4", oneCore, map[string][2]float64{"k/p": {1000, 530}}), // 1.89x
	}
	v := TrendGate(hist, TrendOptions{})
	if len(v.Failures) != 0 || len(v.Warnings) != 0 {
		t.Fatalf("stable trajectory flagged: %+v", v)
	}
}

// TestTrendGateBaselineMovementWarnsOnly: the speedup collapses
// because the baseline side got faster, while the optimized path sets
// a new record — a warning, not a failure.
func TestTrendGateBaselineMovementWarnsOnly(t *testing.T) {
	hist := []*Report{
		histReport("P1", oneCore, map[string][2]float64{"k/p": {1000, 500}}), // 2.00x
		histReport("P2", oneCore, map[string][2]float64{"k/p": {700, 480}}),  // 1.46x, new best ns
	}
	v := TrendGate(hist, TrendOptions{})
	if len(v.Failures) != 0 {
		t.Fatalf("uncorroborated drift failed the gate: %+v", v.Failures)
	}
	if len(v.Warnings) != 1 || !strings.Contains(v.Warnings[0].String(), "baseline-side") {
		t.Fatalf("warnings = %+v", v.Warnings)
	}
}

// TestTrendGateSkipsThreadPairsOnSmallHosts: a */threads pair whose
// thread count exceeds the host's cores is reported skipped, never
// judged, never silently passed.
func TestTrendGateSkipsThreadPairsOnSmallHosts(t *testing.T) {
	mk := func(label string, ns float64) *Report {
		r := New()
		r.Label = label
		r.Host = oneCore
		r.Entries = append(r.Entries, Entry{
			Kernel: "grm", Pair: "threads", Threads: 4,
			Baseline:  Metrics{Name: "grm/threads/t1", NsPerOp: 1000, Iterations: 1},
			Optimized: Metrics{Name: "grm/threads/t4", NsPerOp: ns, Iterations: 1},
			Speedup:   1000 / ns,
		})
		return r
	}
	hist := []*Report{mk("P1", 900), mk("P2", 2000)} // would be a huge "drift"
	v := TrendGate(hist, TrendOptions{})
	if len(v.Failures) != 0 {
		t.Fatalf("unexercisable thread pair judged: %+v", v.Failures)
	}
	if len(v.Skipped) != 1 || v.Skipped[0].Kernel != "grm" {
		t.Fatalf("skipped = %+v", v.Skipped)
	}
	// The same pair on a capable host is judged normally.
	able := &Host{OS: "linux", Arch: "amd64", NumCPU: 8, GOMAXPROCS: 8}
	for _, r := range hist {
		r.Host = able
	}
	v = TrendGate(hist, TrendOptions{})
	if len(v.Skipped) != 0 || len(v.Failures) == 0 {
		t.Fatalf("capable host: skipped=%+v failures=%+v", v.Skipped, v.Failures)
	}
}

// TestTrendGateHostChangeStartsFreshTrajectory: a record from a new
// host class is not judged against another machine's speedups.
func TestTrendGateHostChangeStartsFreshTrajectory(t *testing.T) {
	big := &Host{OS: "linux", Arch: "amd64", NumCPU: 8, GOMAXPROCS: 8}
	hist := []*Report{
		histReport("P1", oneCore, map[string][2]float64{"k/p": {1000, 500}}), // 2.00x
		histReport("P2", big, map[string][2]float64{"k/p": {1000, 900}}),     // 1.11x on new hardware
	}
	v := TrendGate(hist, TrendOptions{})
	if len(v.Failures) != 0 {
		t.Fatalf("cross-host comparison failed the gate: %+v", v.Failures)
	}
}

func TestTrendGateFirstRecordVacuouslyPasses(t *testing.T) {
	hist := []*Report{histReport("P1", oneCore, map[string][2]float64{"k/p": {1000, 500}})}
	v := TrendGate(hist, TrendOptions{})
	if len(v.Failures)+len(v.Warnings) != 0 {
		t.Fatalf("single record flagged: %+v", v)
	}
}

func TestSparkline(t *testing.T) {
	s := Sparkline([]float64{1, 2, 3})
	if len([]rune(s)) != 3 {
		t.Fatalf("sparkline %q", s)
	}
	if Sparkline(nil) != "" {
		t.Fatal("empty input")
	}
	flat := []rune(Sparkline([]float64{5, 5}))
	if len(flat) != 2 || flat[0] != flat[1] {
		t.Fatalf("flat series %q", string(flat))
	}
}
