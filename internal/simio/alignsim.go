package simio

import (
	"math/rand"

	"repro/internal/genome"
)

// AlignSimConfig parameterizes simulated alignment records: reads are
// sampled from the reference and corrupted, with the true CIGAR
// recorded — standing in for the Minimap2-aligned ONT reads the paper's
// pileup kernel consumes.
type AlignSimConfig struct {
	MeanReadLen int
	SubRate     float64
	InsRate     float64
	DelRate     float64
	MeanQual    float64
	RefName     string
}

// DefaultAlignSim mirrors ONT alignments: long reads, ~10% error split
// across substitutions and indels.
func DefaultAlignSim() AlignSimConfig {
	return AlignSimConfig{
		MeanReadLen: 4000,
		SubRate:     0.04,
		InsRate:     0.03,
		DelRate:     0.03,
		MeanQual:    12,
		RefName:     "ref",
	}
}

// SimulateAlignments draws n alignment records against ref. Each
// record's CIGAR reflects exactly the edits applied to its read.
func SimulateAlignments(rng *rand.Rand, ref genome.Seq, n int, cfg AlignSimConfig) []*Alignment {
	out := make([]*Alignment, 0, n)
	for i := 0; i < n; i++ {
		length := cfg.MeanReadLen/2 + rng.Intn(cfg.MeanReadLen)
		if length >= len(ref) {
			length = len(ref) - 1
		}
		if length < 1 {
			break
		}
		pos := rng.Intn(len(ref) - length)
		a := simulateOne(rng, ref, pos, length, &cfg)
		a.ReadName = "aln-" + itoa(i)
		a.Pack()
		out = append(out, a)
	}
	return out
}

func simulateOne(rng *rand.Rand, ref genome.Seq, pos, refLen int, cfg *AlignSimConfig) *Alignment {
	var seq genome.Seq
	var qual []byte
	var cig Cigar
	addOp := func(op CigarOp, n int) {
		if n == 0 {
			return
		}
		if len(cig) > 0 && cig[len(cig)-1].Op == op {
			cig[len(cig)-1].Len += n
			return
		}
		cig = append(cig, CigarElem{Len: n, Op: op})
	}
	q := func() byte {
		v := cfg.MeanQual + rng.NormFloat64()*3
		if v < 2 {
			v = 2
		}
		if v > 60 {
			v = 60
		}
		return byte(v)
	}
	for r := pos; r < pos+refLen; r++ {
		roll := rng.Float64()
		switch {
		case roll < cfg.DelRate:
			addOp(CigarDel, 1)
		case roll < cfg.DelRate+cfg.InsRate:
			seq = append(seq, genome.Base(rng.Intn(4)), ref[r])
			qual = append(qual, q(), q())
			addOp(CigarIns, 1)
			addOp(CigarMatch, 1)
		case roll < cfg.DelRate+cfg.InsRate+cfg.SubRate:
			alt := genome.Base(rng.Intn(3))
			if alt >= ref[r] {
				alt++
			}
			seq = append(seq, alt)
			qual = append(qual, q())
			addOp(CigarMatch, 1)
		default:
			seq = append(seq, ref[r])
			qual = append(qual, q())
			addOp(CigarMatch, 1)
		}
	}
	return &Alignment{
		RefName: cfg.RefName,
		Pos:     pos,
		MapQ:    60,
		Cigar:   cig,
		Seq:     seq,
		Qual:    qual,
		Reverse: rng.Intn(2) == 1,
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var buf [20]byte
	p := len(buf)
	for i > 0 {
		p--
		buf[p] = byte('0' + i%10)
		i /= 10
	}
	return string(buf[p:])
}
