package simio

import (
	"bufio"
	"compress/gzip"
	"fmt"
	"io"
)

// Real sequencing files ship gzipped (.fastq.gz, .fa.gz). MaybeGzip
// sniffs the two-byte gzip magic and transparently wraps the reader,
// so every parser in this package accepts both plain and compressed
// streams.

// MaybeGzip returns a reader that decompresses r when it carries a
// gzip stream and passes it through otherwise.
func MaybeGzip(r io.Reader) (io.Reader, error) {
	br := bufio.NewReader(r)
	magic, err := br.Peek(2)
	if err != nil {
		// Too short to be gzipped; let the downstream parser report.
		return br, nil
	}
	if magic[0] == 0x1f && magic[1] == 0x8b {
		zr, err := gzip.NewReader(br)
		if err != nil {
			return nil, fmt.Errorf("simio: corrupt gzip header: %w", err)
		}
		return zr, nil
	}
	return br, nil
}

// ReadFastaAuto is ReadFasta with transparent gzip handling.
func ReadFastaAuto(r io.Reader) ([]FastaRecord, error) {
	rr, err := MaybeGzip(r)
	if err != nil {
		return nil, err
	}
	return ReadFasta(rr)
}

// ReadFastqAuto is ReadFastq with transparent gzip handling.
func ReadFastqAuto(r io.Reader) ([]FastqRecord, error) {
	rr, err := MaybeGzip(r)
	if err != nil {
		return nil, err
	}
	return ReadFastq(rr)
}

// WriteFastqGzip writes gzip-compressed FASTQ.
func WriteFastqGzip(w io.Writer, records []FastqRecord) error {
	gw := gzip.NewWriter(w)
	if err := WriteFastq(gw, records); err != nil {
		gw.Close()
		return err
	}
	return gw.Close()
}

// WriteFastaGzip writes gzip-compressed FASTA.
func WriteFastaGzip(w io.Writer, records []FastaRecord) error {
	gw := gzip.NewWriter(w)
	if err := WriteFasta(gw, records); err != nil {
		gw.Close()
		return err
	}
	return gw.Close()
}
