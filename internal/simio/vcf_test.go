package simio

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/genome"
)

func TestVCFRoundTrip(t *testing.T) {
	records := []VCFRecord{
		{Chrom: "chr1", Pos: 99, Ref: genome.MustFromString("A"), Alt: genome.MustFromString("T"), Qual: 42.5, Genotype: Het},
		{Chrom: "chr1", Pos: 9, Ref: genome.MustFromString("AC"), Alt: genome.MustFromString("A"), Qual: 10, Genotype: HomAlt},
		{Chrom: "chr2", Pos: 0, Ref: genome.MustFromString("G"), Alt: genome.MustFromString("GTT"), Qual: 99.9, Genotype: HomRef},
	}
	var buf bytes.Buffer
	if err := WriteVCF(&buf, "sample1", records); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "##fileformat=VCFv4.2") || !strings.Contains(out, "sample1") {
		t.Error("header malformed")
	}
	got, err := ReadVCF(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("got %d records", len(got))
	}
	// Written sorted: chr1:10, chr1:100, chr2:1.
	if got[0].Pos != 9 || got[1].Pos != 99 || got[2].Chrom != "chr2" {
		t.Errorf("sort order wrong: %+v", got)
	}
	if !got[1].Ref.Equal(records[0].Ref) || !got[1].Alt.Equal(records[0].Alt) {
		t.Error("alleles corrupted")
	}
	if got[1].Genotype != Het || got[0].Genotype != HomAlt {
		t.Error("genotypes corrupted")
	}
	if got[1].Qual != 42.5 {
		t.Errorf("quality %v", got[1].Qual)
	}
}

func TestVCFGenotypeString(t *testing.T) {
	if HomRef.String() != "0/0" || Het.String() != "0/1" || HomAlt.String() != "1/1" {
		t.Error("genotype strings wrong")
	}
}

func TestReadVCFErrors(t *testing.T) {
	cases := []string{
		"chr1\t0\t.\tA\tT\t10\tPASS\t.\tGT\t0/1\n",  // pos < 1
		"chr1\tx\t.\tA\tT\t10\tPASS\t.\tGT\t0/1\n",  // bad pos
		"chr1\t5\t.\tA\tT\tbad\tPASS\t.\tGT\t0/1\n", // bad qual
		"chr1\t5\t.\tA\tT\t10\tPASS\t.\tGT\t2/1\n",  // bad GT
		"chr1\t5\t.\tN\tT\t10\tPASS\t.\tGT\t0/1\n",  // bad base
		"chr1\t5\t.\tA\tT\t10\n",                    // short line
	}
	for _, c := range cases {
		if _, err := ReadVCF(strings.NewReader(c)); err == nil {
			t.Errorf("expected error for %q", c)
		}
	}
}

func TestReadVCFSkipsHeaders(t *testing.T) {
	in := "##meta\n#CHROM\tstuff\n\nchr1\t5\t.\tA\tT\t10\tPASS\t.\tGT\t0/1\n"
	got, err := ReadVCF(strings.NewReader(in))
	if err != nil || len(got) != 1 {
		t.Fatalf("got %v, %v", got, err)
	}
}
