package simio

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/genome"
)

func TestSAMRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ref := genome.Random(rng, 2000)
	alns := SimulateAlignments(rng, ref, 20, DefaultAlignSim())
	var buf bytes.Buffer
	if err := WriteSAM(&buf, []FastaRecord{{Name: "ref", Seq: ref}}, alns); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "@SQ\tSN:ref\tLN:2000") {
		t.Error("missing @SQ header")
	}
	back, err := ReadSAM(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(alns) {
		t.Fatalf("round trip %d -> %d records", len(alns), len(back))
	}
	for i, a := range alns {
		b := back[i]
		if a.ReadName != b.ReadName || a.Pos != b.Pos || a.Reverse != b.Reverse {
			t.Fatalf("record %d header mismatch", i)
		}
		if a.Cigar.String() != b.Cigar.String() {
			t.Fatalf("record %d CIGAR %s != %s", i, a.Cigar, b.Cigar)
		}
		if !a.Seq.Equal(b.Seq) {
			t.Fatalf("record %d sequence mismatch", i)
		}
		for j := range a.Qual {
			if a.Qual[j] != b.Qual[j] {
				t.Fatalf("record %d quality mismatch at %d", i, j)
			}
		}
	}
}

func TestReadSAMRejectsBadRecords(t *testing.T) {
	cases := []string{
		"r\tx\tref\t1\t60\t4M\t*\t0\t0\tACGT\tIIII\n",  // bad flag
		"r\t0\tref\tz\t60\t4M\t*\t0\t0\tACGT\tIIII\n",  // bad pos
		"r\t0\tref\t1\t999\t4M\t*\t0\t0\tACGT\tIIII\n", // bad mapq
		"r\t0\tref\t1\t60\t5M\t*\t0\t0\tACGT\tIIII\n",  // CIGAR/seq mismatch
		"r\t0\tref\t1\t60\t4M\t*\t0\t0\tACGT\n",        // short line
	}
	for _, c := range cases {
		if _, err := ReadSAM(strings.NewReader(c)); err == nil {
			t.Errorf("accepted %q", c)
		}
	}
}

func TestSAMStarFields(t *testing.T) {
	a := &Alignment{ReadName: "r", RefName: "ref", Pos: 4, MapQ: 0}
	var buf bytes.Buffer
	if err := WriteSAM(&buf, nil, []*Alignment{a}); err != nil {
		t.Fatal(err)
	}
	back, err := ReadSAM(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 1 || back[0].Seq != nil || back[0].Qual != nil || back[0].Cigar != nil {
		t.Errorf("star fields not preserved: %+v", back[0])
	}
}
