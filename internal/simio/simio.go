// Package simio implements the sequence-file formats the suite's driver
// code uses: FASTA and FASTQ reading/writing, CIGAR strings, and a
// SAM-lite alignment record. GenomicsBench added "file I/O-related
// driver code ... for reading inputs and writing results" to every
// extracted kernel; this package is that driver layer.
package simio

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/genome"
	"repro/internal/seq2"
)

// StreamError reports a failure partway through a sequence stream —
// typically a truncated or corrupted .gz file. Records counts the
// complete records decoded before the failure (they are returned
// alongside the error so callers can degrade gracefully), and Err is
// the underlying cause (io.ErrUnexpectedEOF for mid-stream
// truncation, reachable through errors.Is).
type StreamError struct {
	Format  string // "fasta" or "fastq"
	Records int    // complete records decoded before the error
	Err     error
}

func (e *StreamError) Error() string {
	return fmt.Sprintf("simio: %s stream failed after %d record(s): %v", e.Format, e.Records, e.Err)
}

func (e *StreamError) Unwrap() error { return e.Err }

// FastaRecord is one named sequence.
type FastaRecord struct {
	Name string
	Seq  genome.Seq
}

// WriteFasta writes records in FASTA format with 70-column wrapping.
func WriteFasta(w io.Writer, records []FastaRecord) error {
	bw := bufio.NewWriter(w)
	for _, rec := range records {
		if _, err := fmt.Fprintf(bw, ">%s\n", rec.Name); err != nil {
			return err
		}
		s := rec.Seq.String()
		for len(s) > 0 {
			n := 70
			if n > len(s) {
				n = len(s)
			}
			if _, err := bw.WriteString(s[:n]); err != nil {
				return err
			}
			if err := bw.WriteByte('\n'); err != nil {
				return err
			}
			s = s[n:]
		}
	}
	return bw.Flush()
}

// ReadFasta parses all records from a FASTA stream.
func ReadFasta(r io.Reader) ([]FastaRecord, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	var records []FastaRecord
	var name string
	var body strings.Builder
	flush := func() error {
		if name == "" {
			return nil
		}
		seq, err := genome.FromString(body.String())
		if err != nil {
			return fmt.Errorf("simio: record %q: %w", name, err)
		}
		records = append(records, FastaRecord{Name: name, Seq: seq})
		body.Reset()
		return nil
	}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if line[0] == '>' {
			if err := flush(); err != nil {
				return nil, err
			}
			name = strings.Fields(line[1:])[0]
			continue
		}
		if name == "" {
			return nil, fmt.Errorf("simio: sequence data before first FASTA header")
		}
		body.WriteString(line)
	}
	if err := sc.Err(); err != nil {
		// Truncated/corrupted stream (e.g. a chopped .fa.gz): hand back
		// the records completed before the failure with a StreamError
		// carrying the count. The in-progress record is dropped — its
		// tail is missing.
		return records, &StreamError{Format: "fasta", Records: len(records), Err: err}
	}
	if err := flush(); err != nil {
		return nil, err
	}
	return records, nil
}

// FastqRecord is one read with per-base qualities.
type FastqRecord struct {
	Name string
	Seq  genome.Seq
	Qual []byte // Phred scores (no ASCII offset)
}

// WriteFastq writes records in 4-line FASTQ format with Phred+33 quality.
func WriteFastq(w io.Writer, records []FastqRecord) error {
	bw := bufio.NewWriter(w)
	for _, rec := range records {
		if len(rec.Qual) != len(rec.Seq) {
			return fmt.Errorf("simio: record %q: %d qualities for %d bases", rec.Name, len(rec.Qual), len(rec.Seq))
		}
		qual := make([]byte, len(rec.Qual))
		for i, q := range rec.Qual {
			if q > 93 {
				q = 93
			}
			qual[i] = q + 33
		}
		if _, err := fmt.Fprintf(bw, "@%s\n%s\n+\n%s\n", rec.Name, rec.Seq, qual); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadFastq parses all records from a FASTQ stream. A failure partway
// through (truncated .fastq.gz, corrupted record) returns the records
// completed so far together with a *StreamError carrying the record
// count; mid-record truncation unwraps to io.ErrUnexpectedEOF.
func ReadFastq(r io.Reader) ([]FastqRecord, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	var records []FastqRecord
	// fail wraps a mid-stream error. When the scanner stopped on an IO
	// error, that is the root cause — a truncated stream often
	// surfaces first as a malformed final record (the scanner flushes
	// the partial line before reporting the read error).
	fail := func(err error) ([]FastqRecord, error) {
		if serr := sc.Err(); serr != nil {
			err = serr
		}
		return records, &StreamError{Format: "fastq", Records: len(records), Err: err}
	}
	for sc.Scan() {
		header := strings.TrimSpace(sc.Text())
		if header == "" {
			continue
		}
		if header[0] != '@' {
			return fail(fmt.Errorf("bad FASTQ header %q", header))
		}
		name := strings.Fields(header[1:])[0]
		if !sc.Scan() {
			return fail(io.ErrUnexpectedEOF)
		}
		seq, err := genome.FromString(strings.TrimSpace(sc.Text()))
		if err != nil {
			return fail(fmt.Errorf("record %q: %w", name, err))
		}
		if !sc.Scan() {
			return fail(io.ErrUnexpectedEOF)
		}
		if plus := strings.TrimSpace(sc.Text()); !strings.HasPrefix(plus, "+") {
			return fail(fmt.Errorf("record %q: missing + separator", name))
		}
		if !sc.Scan() {
			return fail(io.ErrUnexpectedEOF)
		}
		qualStr := strings.TrimSpace(sc.Text())
		if len(qualStr) != len(seq) {
			return fail(fmt.Errorf("record %q: %d qualities for %d bases", name, len(qualStr), len(seq)))
		}
		qual := make([]byte, len(qualStr))
		for i := 0; i < len(qualStr); i++ {
			if qualStr[i] < 33 {
				return fail(fmt.Errorf("record %q: invalid quality byte %d", name, qualStr[i]))
			}
			qual[i] = qualStr[i] - 33
		}
		records = append(records, FastqRecord{Name: name, Seq: seq, Qual: qual})
	}
	if err := sc.Err(); err != nil {
		return fail(err)
	}
	return records, nil
}

// CigarOp is one alignment operation kind.
type CigarOp byte

// CIGAR operation codes (SAM subset used by the suite).
const (
	CigarMatch    CigarOp = 'M' // alignment match or mismatch
	CigarIns      CigarOp = 'I' // insertion to the reference
	CigarDel      CigarOp = 'D' // deletion from the reference
	CigarSoftClip CigarOp = 'S' // clipped read bases
)

// CigarElem is a run-length CIGAR element.
type CigarElem struct {
	Len int
	Op  CigarOp
}

// Cigar is a full alignment description.
type Cigar []CigarElem

// String renders the CIGAR in SAM text form, "*" when empty.
func (c Cigar) String() string {
	if len(c) == 0 {
		return "*"
	}
	var b strings.Builder
	for _, e := range c {
		b.WriteString(strconv.Itoa(e.Len))
		b.WriteByte(byte(e.Op))
	}
	return b.String()
}

// ParseCigar parses SAM CIGAR text. "*" yields an empty Cigar.
func ParseCigar(s string) (Cigar, error) {
	if s == "*" || s == "" {
		return nil, nil
	}
	var out Cigar
	n := 0
	sawDigit := false
	for i := 0; i < len(s); i++ {
		ch := s[i]
		if ch >= '0' && ch <= '9' {
			n = n*10 + int(ch-'0')
			sawDigit = true
			continue
		}
		if !sawDigit || n == 0 {
			return nil, fmt.Errorf("simio: CIGAR op %q without positive length", ch)
		}
		switch CigarOp(ch) {
		case CigarMatch, CigarIns, CigarDel, CigarSoftClip:
			out = append(out, CigarElem{Len: n, Op: CigarOp(ch)})
		default:
			return nil, fmt.Errorf("simio: unsupported CIGAR op %q", ch)
		}
		n = 0
		sawDigit = false
	}
	if sawDigit {
		return nil, fmt.Errorf("simio: trailing CIGAR length without op")
	}
	return out, nil
}

// ReadLen reports how many read bases the CIGAR consumes.
func (c Cigar) ReadLen() int {
	n := 0
	for _, e := range c {
		switch e.Op {
		case CigarMatch, CigarIns, CigarSoftClip:
			n += e.Len
		}
	}
	return n
}

// RefLen reports how many reference bases the CIGAR spans.
func (c Cigar) RefLen() int {
	n := 0
	for _, e := range c {
		switch e.Op {
		case CigarMatch, CigarDel:
			n += e.Len
		}
	}
	return n
}

// Alignment is a SAM-lite alignment record: a read placed on a
// reference with a CIGAR. It is the input unit for the pileup and dbg
// kernels.
type Alignment struct {
	ReadName string
	RefName  string
	Pos      int // 0-based leftmost reference coordinate
	MapQ     byte
	Cigar    Cigar
	Seq      genome.Seq
	Qual     []byte
	Reverse  bool

	// packed is Seq in the 2-bit internal/seq2 layout, filled by Pack.
	// Real BAM records carry packed bases natively; packing once at
	// record construction lets consumers (pileup's match-run counter)
	// walk words instead of bytes without per-use packing cost.
	packed []uint64
}

// Pack stores Seq's 2-bit packed form on the record. Call it once
// after construction (SimulateAlignments does); concurrent readers of
// a shared record must not race with it.
func (a *Alignment) Pack() {
	a.packed = seq2.PackInto(a.packed, a.Seq).WordsSlice()
}

// PackedSeq returns the packed words filled by Pack, or nil when the
// record was never packed (consumers fall back to byte walks).
func (a *Alignment) PackedSeq() []uint64 { return a.packed }

// Validate checks internal consistency of the record.
func (a *Alignment) Validate() error {
	if got := a.Cigar.ReadLen(); len(a.Cigar) > 0 && got != len(a.Seq) {
		return fmt.Errorf("simio: alignment %q: CIGAR consumes %d read bases, sequence has %d", a.ReadName, got, len(a.Seq))
	}
	if len(a.Qual) != 0 && len(a.Qual) != len(a.Seq) {
		return fmt.Errorf("simio: alignment %q: %d qualities for %d bases", a.ReadName, len(a.Qual), len(a.Seq))
	}
	if a.Pos < 0 {
		return fmt.Errorf("simio: alignment %q: negative position", a.ReadName)
	}
	return nil
}

// End returns one past the last reference base the alignment covers.
func (a *Alignment) End() int { return a.Pos + a.Cigar.RefLen() }
