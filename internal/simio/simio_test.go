package simio

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/genome"
)

func TestFastaRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	records := []FastaRecord{
		{Name: "chr1", Seq: genome.Random(rng, 200)},
		{Name: "chr2", Seq: genome.Random(rng, 71)}, // forces wrap boundary
		{Name: "empty", Seq: genome.Seq{}},
	}
	var buf bytes.Buffer
	if err := WriteFasta(&buf, records); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFasta(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(records) {
		t.Fatalf("got %d records, want %d", len(got), len(records))
	}
	for i := range records {
		if got[i].Name != records[i].Name || !got[i].Seq.Equal(records[i].Seq) {
			t.Errorf("record %d mismatch", i)
		}
	}
}

func TestReadFastaErrors(t *testing.T) {
	if _, err := ReadFasta(strings.NewReader("ACGT\n")); err == nil {
		t.Error("expected error for data before header")
	}
	if _, err := ReadFasta(strings.NewReader(">x\nACGN\n")); err == nil {
		t.Error("expected error for invalid base")
	}
}

func TestFastqRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	seq := genome.Random(rng, 50)
	qual := make([]byte, 50)
	for i := range qual {
		qual[i] = byte(rng.Intn(60)) + 2
	}
	records := []FastqRecord{{Name: "read1", Seq: seq, Qual: qual}}
	var buf bytes.Buffer
	if err := WriteFastq(&buf, records); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFastq(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Name != "read1" {
		t.Fatalf("bad records %v", got)
	}
	if !got[0].Seq.Equal(seq) {
		t.Error("sequence mismatch")
	}
	for i := range qual {
		if got[0].Qual[i] != qual[i] {
			t.Fatalf("quality %d: got %d want %d", i, got[0].Qual[i], qual[i])
		}
	}
}

func TestWriteFastqLengthMismatch(t *testing.T) {
	var buf bytes.Buffer
	err := WriteFastq(&buf, []FastqRecord{{Name: "x", Seq: genome.MustFromString("ACGT"), Qual: []byte{30}}})
	if err == nil {
		t.Error("expected mismatch error")
	}
}

func TestReadFastqErrors(t *testing.T) {
	cases := []string{
		"ACGT\nACGT\n+\nIIII\n",  // missing @
		"@x\nACGT\nACGT\nIIII\n", // missing +
		"@x\nACGT\n+\nIII\n",     // quality length mismatch
	}
	for _, in := range cases {
		if _, err := ReadFastq(strings.NewReader(in)); err == nil {
			t.Errorf("expected error for %q", in)
		}
	}
}

func TestCigarStringRoundTrip(t *testing.T) {
	c := Cigar{{10, CigarSoftClip}, {100, CigarMatch}, {2, CigarIns}, {3, CigarDel}, {36, CigarMatch}}
	s := c.String()
	if s != "10S100M2I3D36M" {
		t.Errorf("String = %s", s)
	}
	back, err := ParseCigar(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(c) {
		t.Fatalf("parsed %d elems", len(back))
	}
	for i := range c {
		if back[i] != c[i] {
			t.Errorf("elem %d: %v != %v", i, back[i], c[i])
		}
	}
}

func TestParseCigarStar(t *testing.T) {
	c, err := ParseCigar("*")
	if err != nil || c != nil {
		t.Errorf("ParseCigar(*) = %v, %v", c, err)
	}
	if c.String() != "*" {
		t.Errorf("empty Cigar renders %q", c.String())
	}
}

func TestParseCigarErrors(t *testing.T) {
	for _, s := range []string{"M", "0M", "10", "5X", "3M4"} {
		if _, err := ParseCigar(s); err == nil {
			t.Errorf("ParseCigar(%q): expected error", s)
		}
	}
}

func TestCigarLens(t *testing.T) {
	c, _ := ParseCigar("5S90M2I3D10M")
	if got := c.ReadLen(); got != 5+90+2+10 {
		t.Errorf("ReadLen = %d", got)
	}
	if got := c.RefLen(); got != 90+3+10 {
		t.Errorf("RefLen = %d", got)
	}
}

func TestCigarPropertyRoundTrip(t *testing.T) {
	ops := []CigarOp{CigarMatch, CigarIns, CigarDel, CigarSoftClip}
	f := func(lens []uint8) bool {
		var c Cigar
		for i, l := range lens {
			if l == 0 {
				continue
			}
			op := ops[i%len(ops)]
			// Merge adjacent same ops to keep canonical form for comparison.
			if len(c) > 0 && c[len(c)-1].Op == op {
				c[len(c)-1].Len += int(l)
			} else {
				c = append(c, CigarElem{Len: int(l), Op: op})
			}
		}
		back, err := ParseCigar(c.String())
		if err != nil {
			return false
		}
		if len(back) != len(c) {
			return false
		}
		for i := range c {
			if back[i] != c[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAlignmentValidate(t *testing.T) {
	c, _ := ParseCigar("4M")
	good := &Alignment{ReadName: "r", Pos: 10, Cigar: c, Seq: genome.MustFromString("ACGT"), Qual: []byte{30, 30, 30, 30}}
	if err := good.Validate(); err != nil {
		t.Errorf("valid alignment rejected: %v", err)
	}
	if got := good.End(); got != 14 {
		t.Errorf("End = %d", got)
	}
	bad := &Alignment{ReadName: "r", Pos: 0, Cigar: c, Seq: genome.MustFromString("ACG")}
	if err := bad.Validate(); err == nil {
		t.Error("CIGAR/seq mismatch accepted")
	}
	neg := &Alignment{ReadName: "r", Pos: -1, Cigar: c, Seq: genome.MustFromString("ACGT")}
	if err := neg.Validate(); err == nil {
		t.Error("negative position accepted")
	}
}

// TestSimulatedAlignmentReconstruction verifies that applying a
// simulated alignment's CIGAR to the reference reproduces the read's
// match columns exactly (substitution columns aside).
func TestSimulatedAlignmentReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	ref := genome.Random(rng, 3000)
	cfg := DefaultAlignSim()
	cfg.SubRate = 0 // only indels: every M column must match the reference
	alns := SimulateAlignments(rng, ref, 25, cfg)
	for _, a := range alns {
		refPos, readPos := a.Pos, 0
		for _, e := range a.Cigar {
			switch e.Op {
			case CigarMatch:
				for i := 0; i < e.Len; i++ {
					if a.Seq[readPos] != ref[refPos] {
						t.Fatalf("%s: M column mismatch at ref %d", a.ReadName, refPos)
					}
					refPos++
					readPos++
				}
			case CigarIns, CigarSoftClip:
				readPos += e.Len
			case CigarDel:
				refPos += e.Len
			}
		}
		if readPos != len(a.Seq) {
			t.Fatalf("%s: CIGAR consumed %d of %d read bases", a.ReadName, readPos, len(a.Seq))
		}
	}
}
