package simio

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"testing"

	"repro/internal/genome"
)

func TestGzipFastqRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var records []FastqRecord
	for i := 0; i < 10; i++ {
		seq := genome.Random(rng, 151)
		qual := make([]byte, 151)
		for j := range qual {
			qual[j] = byte(30 + rng.Intn(10))
		}
		records = append(records, FastqRecord{Name: "r", Seq: seq, Qual: qual})
	}
	var buf bytes.Buffer
	if err := WriteFastqGzip(&buf, records); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 || buf.Bytes()[0] != 0x1f {
		t.Fatal("output not gzipped")
	}
	got, err := ReadFastqAuto(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(records) {
		t.Fatalf("round trip %d -> %d records", len(records), len(got))
	}
	for i := range records {
		if !got[i].Seq.Equal(records[i].Seq) {
			t.Fatal("sequence corrupted")
		}
	}
}

func TestGzipFastaRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	records := []FastaRecord{{Name: "chr", Seq: genome.Random(rng, 500)}}
	var buf bytes.Buffer
	if err := WriteFastaGzip(&buf, records); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFastaAuto(&buf)
	if err != nil || len(got) != 1 || !got[0].Seq.Equal(records[0].Seq) {
		t.Fatalf("gzip FASTA round trip failed: %v", err)
	}
}

func TestAutoReadersAcceptPlainText(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	records := []FastaRecord{{Name: "chr", Seq: genome.Random(rng, 100)}}
	var buf bytes.Buffer
	if err := WriteFasta(&buf, records); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFastaAuto(&buf)
	if err != nil || len(got) != 1 {
		t.Fatalf("plain FASTA through auto reader failed: %v", err)
	}
}

func TestMaybeGzipShortInput(t *testing.T) {
	r, err := MaybeGzip(bytes.NewReader([]byte{'x'}))
	if err != nil || r == nil {
		t.Fatal("short input should pass through")
	}
}

// makeFastqGz builds an n-record gzipped FASTQ fixture.
func makeFastqGz(t *testing.T, n int) ([]byte, []FastqRecord) {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	records := make([]FastqRecord, 0, n)
	for i := 0; i < n; i++ {
		seq := genome.Random(rng, 101)
		qual := make([]byte, 101)
		for j := range qual {
			qual[j] = byte(25 + rng.Intn(15))
		}
		records = append(records, FastqRecord{Name: "read", Seq: seq, Qual: qual})
	}
	var buf bytes.Buffer
	if err := WriteFastqGzip(&buf, records); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), records
}

func TestReadFastqTruncatedGzip(t *testing.T) {
	data, records := makeFastqGz(t, 200)
	// Chop the compressed byte stream mid-file, as a killed download or
	// full disk would. 55% keeps the gzip header intact but loses the
	// tail and trailer.
	cut := data[:len(data)*55/100]
	got, err := ReadFastqAuto(bytes.NewReader(cut))
	if err == nil {
		t.Fatal("truncated .fastq.gz parsed without error")
	}
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Errorf("err = %v, want errors.Is(..., io.ErrUnexpectedEOF)", err)
	}
	var se *StreamError
	if !errors.As(err, &se) {
		t.Fatalf("err = %T, want *StreamError", err)
	}
	if se.Format != "fastq" || se.Records != len(got) {
		t.Errorf("StreamError = %+v with %d records returned", se, len(got))
	}
	// Partial decode: some complete records come back, but not all.
	if len(got) == 0 || len(got) >= len(records) {
		t.Errorf("decoded %d/%d records from a 55%% stream", len(got), len(records))
	}
	for i := range got {
		if !got[i].Seq.Equal(records[i].Seq) {
			t.Fatalf("record %d corrupted in partial decode", i)
		}
	}
}

func TestReadFastqCleanMidRecordEOF(t *testing.T) {
	// Plain-text FASTQ ending mid-record (clean EOF after the header).
	in := "@r1\nACGT\n+\nIIII\n@r2\nACGT\n"
	got, err := ReadFastq(bytes.NewReader([]byte(in)))
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Errorf("err = %v, want io.ErrUnexpectedEOF", err)
	}
	var se *StreamError
	if !errors.As(err, &se) || se.Records != 1 || len(got) != 1 {
		t.Errorf("want 1 complete record surfaced, got %d (err %v)", len(got), err)
	}
}

func TestReadFastaTruncatedGzip(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	records := make([]FastaRecord, 40)
	for i := range records {
		records[i] = FastaRecord{Name: "seq", Seq: genome.Random(rng, 300)}
	}
	var buf bytes.Buffer
	if err := WriteFastaGzip(&buf, records); err != nil {
		t.Fatal(err)
	}
	cut := buf.Bytes()[:buf.Len()/2]
	got, err := ReadFastaAuto(bytes.NewReader(cut))
	if err == nil {
		t.Fatal("truncated .fa.gz parsed without error")
	}
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Errorf("err = %v, want errors.Is(..., io.ErrUnexpectedEOF)", err)
	}
	var se *StreamError
	if !errors.As(err, &se) || se.Format != "fasta" || se.Records != len(got) {
		t.Errorf("err = %v with %d records", err, len(got))
	}
	if len(got) == 0 || len(got) >= len(records) {
		t.Errorf("decoded %d/%d records from a half stream", len(got), len(records))
	}
}

func TestMaybeGzipCorruptHeader(t *testing.T) {
	// Correct magic, garbage after: NewReader must fail cleanly.
	bad := []byte{0x1f, 0x8b, 0xff, 0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06}
	if _, err := MaybeGzip(bytes.NewReader(bad)); err == nil {
		t.Error("corrupt gzip header accepted")
	}
}
