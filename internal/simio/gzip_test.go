package simio

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/genome"
)

func TestGzipFastqRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var records []FastqRecord
	for i := 0; i < 10; i++ {
		seq := genome.Random(rng, 151)
		qual := make([]byte, 151)
		for j := range qual {
			qual[j] = byte(30 + rng.Intn(10))
		}
		records = append(records, FastqRecord{Name: "r", Seq: seq, Qual: qual})
	}
	var buf bytes.Buffer
	if err := WriteFastqGzip(&buf, records); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 || buf.Bytes()[0] != 0x1f {
		t.Fatal("output not gzipped")
	}
	got, err := ReadFastqAuto(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(records) {
		t.Fatalf("round trip %d -> %d records", len(records), len(got))
	}
	for i := range records {
		if !got[i].Seq.Equal(records[i].Seq) {
			t.Fatal("sequence corrupted")
		}
	}
}

func TestGzipFastaRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	records := []FastaRecord{{Name: "chr", Seq: genome.Random(rng, 500)}}
	var buf bytes.Buffer
	if err := WriteFastaGzip(&buf, records); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFastaAuto(&buf)
	if err != nil || len(got) != 1 || !got[0].Seq.Equal(records[0].Seq) {
		t.Fatalf("gzip FASTA round trip failed: %v", err)
	}
}

func TestAutoReadersAcceptPlainText(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	records := []FastaRecord{{Name: "chr", Seq: genome.Random(rng, 100)}}
	var buf bytes.Buffer
	if err := WriteFasta(&buf, records); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFastaAuto(&buf)
	if err != nil || len(got) != 1 {
		t.Fatalf("plain FASTA through auto reader failed: %v", err)
	}
}

func TestMaybeGzipShortInput(t *testing.T) {
	r, err := MaybeGzip(bytes.NewReader([]byte{'x'}))
	if err != nil || r == nil {
		t.Fatal("short input should pass through")
	}
}
