package simio

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/genome"
)

// SAM text output/input: the lingua franca between alignment and
// downstream kernels (pileup, dbg, nn-variant all consume aligned
// records). The subset here covers single-end records with the flags
// the suite uses.

// SAM flag bits used by the suite.
const (
	FlagReverse  = 0x10
	FlagUnmapped = 0x4
)

// WriteSAM writes a header (@HD + @SQ per reference) and the records.
func WriteSAM(w io.Writer, refs []FastaRecord, alignments []*Alignment) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "@HD\tVN:1.6\tSO:unknown")
	for _, r := range refs {
		fmt.Fprintf(bw, "@SQ\tSN:%s\tLN:%d\n", r.Name, len(r.Seq))
	}
	fmt.Fprintln(bw, "@PG\tID:genomicsbench-go\tPN:genomicsbench-go")
	for _, a := range alignments {
		if err := a.Validate(); err != nil {
			return err
		}
		flag := 0
		if a.Reverse {
			flag |= FlagReverse
		}
		qual := "*"
		if len(a.Qual) > 0 {
			qb := make([]byte, len(a.Qual))
			for i, q := range a.Qual {
				if q > 93 {
					q = 93
				}
				qb[i] = q + 33
			}
			qual = string(qb)
		}
		seq := "*"
		if len(a.Seq) > 0 {
			seq = a.Seq.String()
		}
		if _, err := fmt.Fprintf(bw, "%s\t%d\t%s\t%d\t%d\t%s\t*\t0\t0\t%s\t%s\n",
			a.ReadName, flag, a.RefName, a.Pos+1, a.MapQ, a.Cigar, seq, qual); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadSAM parses records written by WriteSAM (headers skipped).
func ReadSAM(r io.Reader) ([]*Alignment, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	var out []*Alignment
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "@") {
			continue
		}
		fields := strings.Split(line, "\t")
		if len(fields) < 11 {
			return nil, fmt.Errorf("simio: SAM line has %d fields, want 11", len(fields))
		}
		flag, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("simio: bad SAM flag %q", fields[1])
		}
		pos, err := strconv.Atoi(fields[3])
		if err != nil || pos < 0 {
			return nil, fmt.Errorf("simio: bad SAM position %q", fields[3])
		}
		mapq, err := strconv.Atoi(fields[4])
		if err != nil || mapq < 0 || mapq > 255 {
			return nil, fmt.Errorf("simio: bad SAM MAPQ %q", fields[4])
		}
		cig, err := ParseCigar(fields[5])
		if err != nil {
			return nil, err
		}
		a := &Alignment{
			ReadName: fields[0],
			RefName:  fields[2],
			Pos:      pos - 1,
			MapQ:     byte(mapq),
			Cigar:    cig,
			Reverse:  flag&FlagReverse != 0,
		}
		if fields[9] != "*" {
			if a.Seq, err = genome.FromString(fields[9]); err != nil {
				return nil, err
			}
		}
		if fields[10] != "*" {
			a.Qual = make([]byte, len(fields[10]))
			for i := 0; i < len(fields[10]); i++ {
				if fields[10][i] < 33 {
					return nil, fmt.Errorf("simio: bad SAM quality byte %d", fields[10][i])
				}
				a.Qual[i] = fields[10][i] - 33
			}
		}
		if err := a.Validate(); err != nil {
			return nil, err
		}
		a.Pack()
		out = append(out, a)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
