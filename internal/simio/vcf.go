package simio

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"repro/internal/genome"
)

// VCF-lite: enough of the Variant Call Format for the suite's variant
// pipelines to emit and re-read their calls (single sample, SNVs and
// small indels, GT field only).

// Genotype is a diploid genotype call.
type Genotype int

// Genotype values.
const (
	HomRef Genotype = iota
	Het
	HomAlt
)

// String renders the GT field.
func (g Genotype) String() string {
	switch g {
	case Het:
		return "0/1"
	case HomAlt:
		return "1/1"
	default:
		return "0/0"
	}
}

// VCFRecord is one variant call.
type VCFRecord struct {
	Chrom    string
	Pos      int // 0-based internally; written 1-based
	Ref      genome.Seq
	Alt      genome.Seq
	Qual     float64
	Genotype Genotype
}

// WriteVCF writes a minimal single-sample VCF.
func WriteVCF(w io.Writer, sample string, records []VCFRecord) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "##fileformat=VCFv4.2")
	fmt.Fprintln(bw, "##source=genomicsbench-go")
	fmt.Fprintln(bw, `##FORMAT=<ID=GT,Number=1,Type=String,Description="Genotype">`)
	fmt.Fprintf(bw, "#CHROM\tPOS\tID\tREF\tALT\tQUAL\tFILTER\tINFO\tFORMAT\t%s\n", sample)
	sorted := append([]VCFRecord(nil), records...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Chrom != sorted[j].Chrom {
			return sorted[i].Chrom < sorted[j].Chrom
		}
		return sorted[i].Pos < sorted[j].Pos
	})
	for _, r := range sorted {
		ref := r.Ref.String()
		alt := r.Alt.String()
		if ref == "" {
			ref = "."
		}
		if alt == "" {
			alt = "."
		}
		if _, err := fmt.Fprintf(bw, "%s\t%d\t.\t%s\t%s\t%.1f\tPASS\t.\tGT\t%s\n",
			r.Chrom, r.Pos+1, ref, alt, r.Qual, r.Genotype); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadVCF parses a VCF written by WriteVCF (single sample, GT only).
func ReadVCF(r io.Reader) ([]VCFRecord, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	var out []VCFRecord
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Split(line, "\t")
		if len(fields) < 10 {
			return nil, fmt.Errorf("simio: VCF line has %d fields, want 10", len(fields))
		}
		pos, err := strconv.Atoi(fields[1])
		if err != nil || pos < 1 {
			return nil, fmt.Errorf("simio: bad VCF position %q", fields[1])
		}
		rec := VCFRecord{Chrom: fields[0], Pos: pos - 1}
		if fields[3] != "." {
			if rec.Ref, err = genome.FromString(fields[3]); err != nil {
				return nil, err
			}
		}
		if fields[4] != "." {
			if rec.Alt, err = genome.FromString(fields[4]); err != nil {
				return nil, err
			}
		}
		if rec.Qual, err = strconv.ParseFloat(fields[5], 64); err != nil {
			return nil, fmt.Errorf("simio: bad VCF quality %q", fields[5])
		}
		switch fields[9] {
		case "0/1", "1/0":
			rec.Genotype = Het
		case "1/1":
			rec.Genotype = HomAlt
		case "0/0":
			rec.Genotype = HomRef
		default:
			return nil, fmt.Errorf("simio: unsupported genotype %q", fields[9])
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
