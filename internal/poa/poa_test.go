package poa

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/genome"
)

func TestSingleSequenceConsensusIsIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s := genome.Random(rng, 120)
	g := New()
	g.AddSequence(s, DefaultParams())
	if got := g.Consensus(); !got.Equal(s) {
		t.Errorf("consensus of single sequence differs:\n got %s\nwant %s", got, s)
	}
	if g.NumNodes() != 120 {
		t.Errorf("backbone has %d nodes, want 120", g.NumNodes())
	}
	if g.NumEdges() != 119 {
		t.Errorf("backbone has %d edges, want 119", g.NumEdges())
	}
}

func TestIdenticalSequencesReinforceBackbone(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	s := genome.Random(rng, 100)
	g := New()
	p := DefaultParams()
	for i := 0; i < 5; i++ {
		g.AddSequence(s, p)
	}
	if g.NumNodes() != 100 {
		t.Errorf("identical sequences grew the graph to %d nodes", g.NumNodes())
	}
	if got := g.Consensus(); !got.Equal(s) {
		t.Error("consensus of identical sequences differs from input")
	}
	if g.CellUpdates == 0 {
		t.Error("no cell updates counted")
	}
}

func TestMajorityConsensusOverSNVs(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := genome.Random(rng, 150)
	w := &Window{}
	for i := 0; i < 7; i++ {
		w.Sequences = append(w.Sequences, s.Clone())
	}
	for i := 0; i < 3; i++ {
		mut := s.Clone()
		pos := 20 + 40*i
		mut[pos] = genome.Complement(mut[pos])
		w.Sequences = append(w.Sequences, mut)
	}
	cons, cells := ConsensusOf(w, DefaultParams())
	if !cons.Equal(s) {
		t.Errorf("majority consensus incorrect:\n got %s\nwant %s", cons, s)
	}
	if cells == 0 {
		t.Error("no cells counted")
	}
}

func TestConsensusCorrectsIndels(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	s := genome.Random(rng, 120)
	w := &Window{}
	for i := 0; i < 6; i++ {
		w.Sequences = append(w.Sequences, s.Clone())
	}
	// Two reads with a deletion, one with an insertion.
	del := append(s[:50].Clone(), s[53:]...)
	w.Sequences = append(w.Sequences, del, del.Clone())
	ins := append(s[:80].Clone(), genome.MustFromString("AC")...)
	ins = append(ins, s[80:]...)
	w.Sequences = append(w.Sequences, ins)
	cons, _ := ConsensusOf(w, DefaultParams())
	if !cons.Equal(s) {
		t.Errorf("indel consensus incorrect:\n got %s\nwant %s", cons, s)
	}
}

func TestNoisyReadsConsensus(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	truth := genome.Random(rng, 200)
	w := &Window{}
	// 12 reads, each with ~5% random substitutions at distinct spots.
	for r := 0; r < 12; r++ {
		read := truth.Clone()
		for m := 0; m < 10; m++ {
			pos := rng.Intn(len(read))
			read[pos] = genome.Base(rng.Intn(4))
		}
		w.Sequences = append(w.Sequences, read)
	}
	cons, _ := ConsensusOf(w, DefaultParams())
	// Consensus should be much closer to truth than any single read.
	if len(cons) < 190 || len(cons) > 210 {
		t.Fatalf("consensus length %d far from 200", len(cons))
	}
	mismatches := 0
	n := len(cons)
	if len(truth) < n {
		n = len(truth)
	}
	for i := 0; i < n; i++ {
		if cons[i] != truth[i] {
			mismatches++
		}
	}
	if mismatches > 6 {
		t.Errorf("consensus has %d mismatches vs truth", mismatches)
	}
}

func TestAlignedNodeReuse(t *testing.T) {
	s := genome.MustFromString("ACGTACGTAC")
	alt := s.Clone()
	alt[5] = genome.Complement(alt[5])
	g := New()
	p := DefaultParams()
	g.AddSequence(s, p)
	before := g.NumNodes()
	g.AddSequence(alt, p)
	afterFirst := g.NumNodes()
	g.AddSequence(alt.Clone(), p)
	afterSecond := g.NumNodes()
	if afterFirst != before+1 {
		t.Errorf("one SNV added %d nodes, want 1", afterFirst-before)
	}
	if afterSecond != afterFirst {
		t.Errorf("repeated alt sequence added %d more nodes, want 0", afterSecond-afterFirst)
	}
}

func TestTopoOrderValid(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	s := genome.Random(rng, 80)
	g := New()
	p := DefaultParams()
	g.AddSequence(s, p)
	for i := 0; i < 3; i++ {
		mut := s.Clone()
		mut[rng.Intn(len(mut))] = genome.Base(rng.Intn(4))
		g.AddSequence(mut, p)
	}
	order := g.topoOrder()
	rank := make(map[int32]int)
	for r, v := range order {
		rank[v] = r
	}
	for v := range g.nodes {
		for _, e := range g.nodes[v].out {
			if rank[int32(v)] >= rank[e.to] {
				t.Fatalf("edge %d->%d violates topological order", v, e.to)
			}
		}
	}
}

func TestEmptyInputs(t *testing.T) {
	g := New()
	if c := g.Consensus(); c != nil {
		t.Error("empty graph consensus should be nil")
	}
	g.AddSequence(nil, DefaultParams())
	if g.NumNodes() != 0 {
		t.Error("adding empty sequence created nodes")
	}
}

func TestRunKernelDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var windows []*Window
	for i := 0; i < 5; i++ {
		truth := genome.Random(rng, 100+rng.Intn(100))
		w := &Window{}
		for r := 0; r < 6; r++ {
			read := truth.Clone()
			read[rng.Intn(len(read))] = genome.Base(rng.Intn(4))
			w.Sequences = append(w.Sequences, read)
		}
		windows = append(windows, w)
	}
	r1 := RunKernel(windows, DefaultParams(), 1)
	r4 := RunKernel(windows, DefaultParams(), 4)
	if r1.CellUpdates != r4.CellUpdates {
		t.Errorf("threading changed cell counts: %d vs %d", r1.CellUpdates, r4.CellUpdates)
	}
	for i := range r1.Consensi {
		if !r1.Consensi[i].Equal(r4.Consensi[i]) {
			t.Fatalf("window %d consensus differs across thread counts", i)
		}
	}
	if r1.TaskStats.Count() != 5 {
		t.Errorf("task count %d", r1.TaskStats.Count())
	}
}

func TestCellUpdatesComplexity(t *testing.T) {
	// Second alignment computes |V| x n cells.
	rng := rand.New(rand.NewSource(8))
	s := genome.Random(rng, 50)
	g := New()
	p := DefaultParams()
	g.AddSequence(s, p)
	if g.CellUpdates != 0 {
		t.Errorf("backbone construction counted %d cells", g.CellUpdates)
	}
	g.AddSequence(s, p)
	if g.CellUpdates != 50*50 {
		t.Errorf("second alignment counted %d cells, want 2500", g.CellUpdates)
	}
}

func TestFitModeAlignsChunkWithoutEndNodes(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	window := genome.Random(rng, 200)
	g := New()
	p := DefaultParams()
	g.AddSequence(window, p)
	before := g.NumNodes()
	// A perfect mid-window chunk fused in fit mode must reuse the
	// backbone exactly: no new nodes.
	chunk := window[60:140].Clone()
	g.AddSequenceMode(chunk, p, FitMode)
	if g.NumNodes() != before {
		t.Errorf("fit-mode chunk added %d nodes", g.NumNodes()-before)
	}
	if got := g.Consensus(); !got.Equal(window) {
		t.Error("consensus changed after fusing a perfect chunk")
	}
}

func TestFitModeVsGlobalModeOnChunk(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	window := genome.Random(rng, 150)
	p := DefaultParams()

	gGlobal := New()
	gGlobal.AddSequence(window, p)
	gGlobal.AddSequenceMode(window[40:110], p, GlobalMode)

	gFit := New()
	gFit.AddSequence(window, p)
	gFit.AddSequenceMode(window[40:110], p, FitMode)

	// Global mode must stretch the chunk across the whole window
	// (creating spurious structure or long gap paths); fit mode must
	// not grow the graph at all.
	if gFit.NumNodes() != 150 {
		t.Errorf("fit mode grew graph to %d nodes", gFit.NumNodes())
	}
	if gGlobal.NumNodes() < gFit.NumNodes() {
		t.Errorf("global mode should not produce fewer nodes than fit mode")
	}
}

func TestFitModeChunkCoverageStrengthensConsensus(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	truth := genome.Random(rng, 240)
	g := New()
	p := DefaultParams()
	// Backbone from a noisy full-length read.
	noisy := truth.Clone()
	for i := 0; i < 12; i++ {
		noisy[rng.Intn(len(noisy))] = genome.Base(rng.Intn(4))
	}
	g.AddSequence(noisy, p)
	// Overlapping error-free chunks fused in fit mode.
	for start := 0; start+120 <= len(truth); start += 40 {
		g.AddSequenceMode(truth[start:start+120].Clone(), p, FitMode)
	}
	cons := g.Consensus()
	// Consensus should be driven by the chunk majority despite the
	// noisy backbone.
	if d := editDist(cons, truth); d > 6 {
		t.Errorf("consensus edit distance %d after chunk fusion", d)
	}
}

func editDist(a, b genome.Seq) int {
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			c := 1
			if a[i-1] == b[j-1] {
				c = 0
			}
			v := prev[j-1] + c
			if s := prev[j] + 1; s < v {
				v = s
			}
			if s := cur[j-1] + 1; s < v {
				v = s
			}
			cur[j] = v
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

// corruptWithCycle seeds a small graph and wires a back-edge so the
// DAG invariant is broken.
func corruptWithCycle(t *testing.T) *Graph {
	t.Helper()
	g := New()
	g.AddSequence(genome.Seq{0, 1, 2, 3}, DefaultParams())
	g.addEdge(3, 0, 1) // back-edge: cycle
	if !g.dirty {
		t.Fatal("addEdge should mark the graph dirty")
	}
	return g
}

func TestCheckedVariantsDetectCycle(t *testing.T) {
	g := corruptWithCycle(t)
	if err := g.AddSequenceChecked(genome.Seq{0, 1, 2}, DefaultParams()); !errors.Is(err, ErrCycle) {
		t.Errorf("AddSequenceChecked err = %v, want ErrCycle", err)
	}
	if _, err := g.ConsensusChecked(); !errors.Is(err, ErrCycle) {
		t.Errorf("ConsensusChecked err = %v, want ErrCycle", err)
	}
}

func TestCheckedVariantsHealthyGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	s := genome.Random(rng, 80)
	g := New()
	for i := 0; i < 3; i++ {
		if err := g.AddSequenceChecked(s, DefaultParams()); err != nil {
			t.Fatalf("AddSequenceChecked on healthy graph: %v", err)
		}
	}
	cons, err := g.ConsensusChecked()
	if err != nil {
		t.Fatalf("ConsensusChecked on healthy graph: %v", err)
	}
	if !cons.Equal(s) {
		t.Errorf("checked consensus differs from input")
	}
	if cons2, err := New().ConsensusChecked(); err != nil || cons2 != nil {
		t.Errorf("empty graph ConsensusChecked = %v, %v", cons2, err)
	}
}

func TestTopoOrderPanicsOnCycle(t *testing.T) {
	g := corruptWithCycle(t)
	defer func() {
		if r := recover(); r == nil {
			t.Error("Consensus on cyclic graph did not panic")
		}
	}()
	g.Consensus()
}
