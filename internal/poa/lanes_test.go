package poa

import (
	"math/rand"
	"testing"

	"repro/internal/genome"
	"repro/internal/lanes"
)

// addBoth adds seq to a scalar-pinned graph and a lane graph and
// checks that every observable the backtracked fusion depends on is
// bit-identical: the full DP score table (int32 vs int16 cells), the
// backtracked path, the fused graph shape, and CellUpdates.
func addBoth(t *testing.T, gs, gl *Graph, seq genome.Seq, p Params, mode AlignMode, trial, step int) {
	t.Helper()
	gs.forceScalar = true
	gl.forceLanes = true // pin the path under test past the measured work floor
	gs.AddSequenceMode(seq, p, mode)
	gl.AddSequenceMode(seq, p, mode)
	if gs.NumNodes() != gl.NumNodes() || gs.NumEdges() != gl.NumEdges() {
		t.Fatalf("trial %d step %d: graph shape diverged: scalar %d nodes/%d edges, lanes %d/%d",
			trial, step, gs.NumNodes(), gs.NumEdges(), gl.NumNodes(), gl.NumEdges())
	}
	if gs.CellUpdates != gl.CellUpdates {
		t.Fatalf("trial %d step %d: CellUpdates %d (scalar) vs %d (lanes)", trial, step, gs.CellUpdates, gl.CellUpdates)
	}
	if len(gs.path) != len(gl.path) {
		t.Fatalf("trial %d step %d: path length %d (scalar) vs %d (lanes)", trial, step, len(gs.path), len(gl.path))
	}
	for i := range gs.path {
		if gs.path[i] != gl.path[i] {
			t.Fatalf("trial %d step %d: path[%d] = %+v (scalar) vs %+v (lanes)", trial, step, i, gs.path[i], gl.path[i])
		}
	}
}

// compareScoreTables checks the freshly written DP tables cell for
// cell over the real (non-padding) columns. Call right after addBoth,
// before another alignment overwrites the tables. V is the node count
// BEFORE the add (the DP's row count), n the sequence length.
func compareScoreTables(t *testing.T, gs, gl *Graph, V, n, trial, step int) {
	t.Helper()
	width := n + 1
	wpad := 1 + (n+15)/16*16
	for r := 0; r <= V; r++ {
		for j := 0; j <= n; j++ {
			want := gs.score[r*width+j]
			got := int32(gl.score16[r*wpad+j])
			if got != want {
				t.Fatalf("trial %d step %d: score[%d][%d] = %d (lanes) vs %d (scalar)", trial, step, r, j, got, want)
			}
		}
	}
}

// TestLanesScalarDifferential fuzzes seeded random windows through
// both paths in lockstep: after every single AddSequence the DP
// tables, backtracked paths, and fused graphs must agree exactly, and
// the final consensi must be byte-identical.
func TestLanesScalarDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	p := DefaultParams()
	for trial := 0; trial < 30; trial++ {
		w := randomWindow(rng)
		gs, gl := New(), New()
		for step, seq := range w.Sequences {
			V := gs.NumNodes()
			if V > 0 {
				if !laneEligible(p, V, len(seq)) {
					t.Fatalf("trial %d step %d: window unexpectedly ineligible (V=%d n=%d)", trial, step, V, len(seq))
				}
			}
			addBoth(t, gs, gl, seq, p, GlobalMode, trial, step)
			if step > 0 { // first sequence seeds the backbone, no DP
				compareScoreTables(t, gs, gl, V, len(seq), trial, step)
			}
		}
		cs, cl := gs.Consensus(), gl.Consensus()
		if !cs.Equal(cl) {
			t.Fatalf("trial %d: consensus differs:\nscalar %v\nlanes  %v", trial, cs, cl)
		}
	}
}

// TestLanesScalarDifferentialFitMode covers the FitMode column-0 and
// moveStart recovery paths (free leading/trailing graph nodes).
func TestLanesScalarDifferentialFitMode(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	p := DefaultParams()
	for trial := 0; trial < 20; trial++ {
		backbone := genome.Random(rng, 80+rng.Intn(120))
		gs, gl := New(), New()
		addBoth(t, gs, gl, backbone, p, GlobalMode, trial, 0)
		for step := 1; step <= 4; step++ {
			// A chunk of the backbone with a few mutations, aligned in
			// FitMode as the chunked-window fusion does.
			lo := rng.Intn(len(backbone) / 2)
			hi := lo + 20 + rng.Intn(len(backbone)-lo-20)
			chunk := backbone[lo:hi].Clone()
			for k := 0; k < len(chunk)/12+1; k++ {
				chunk[rng.Intn(len(chunk))] = genome.Base(rng.Intn(4))
			}
			V := gs.NumNodes()
			addBoth(t, gs, gl, chunk, p, FitMode, trial, step)
			compareScoreTables(t, gs, gl, V, len(chunk), trial, step)
		}
		cs, cl := gs.Consensus(), gl.Consensus()
		if !cs.Equal(cl) {
			t.Fatalf("trial %d: FitMode consensus differs", trial)
		}
	}
}

// TestLanesScalarDifferentialParams sweeps non-default scoring,
// including asymmetric and tie-heavy configurations where the
// first-candidate-wins recovery is most stressed.
func TestLanesScalarDifferentialParams(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	params := []Params{
		{Match: 1, Mismatch: -1, Gap: -1}, // maximal tie density
		{Match: 2, Mismatch: -3, Gap: -1},
		{Match: 5, Mismatch: -4, Gap: -8},
		{Match: 1, Mismatch: 0, Gap: -1}, // zero mismatch: diag/up ties abound
	}
	for pi, p := range params {
		for trial := 0; trial < 8; trial++ {
			w := randomWindow(rng)
			gs, gl := New(), New()
			for step, seq := range w.Sequences {
				addBoth(t, gs, gl, seq, p, GlobalMode, pi*100+trial, step)
			}
			cs, cl := gs.Consensus(), gl.Consensus()
			if !cs.Equal(cl) {
				t.Fatalf("params %d trial %d: consensus differs", pi, trial)
			}
		}
	}
}

// TestLaneEligibleGuard pins the range proof: windows whose score
// magnitude bound exceeds int16 must fall back to the scalar path and
// still produce the scalar result.
func TestLaneEligibleGuard(t *testing.T) {
	if laneEligible(Params{Match: 3, Mismatch: -5, Gap: -4}, 200, 200) != true {
		t.Fatal("typical window should be lane-eligible")
	}
	if laneEligible(Params{Match: 3000, Mismatch: -3000, Gap: -3000}, 200, 200) {
		t.Fatal("extreme scores must be ineligible")
	}
	if laneEligible(DefaultParams(), 10000, 1000) {
		t.Fatal("huge graphs must be ineligible")
	}
	if laneEligible(Params{Match: 1, Mismatch: -1, Gap: 1}, 10, 10) {
		t.Fatal("a gap bonus must be ineligible: the wide scan's sentinel proof needs gap <= 0")
	}
	// An ineligible configuration still computes the scalar answer.
	rng := rand.New(rand.NewSource(54))
	w := randomWindow(rng)
	p := Params{Match: 3000, Mismatch: -5000, Gap: -4000}
	want, wantCells := ConsensusScalarInto(w, p, New())
	got, gotCells := ConsensusInto(w, p, New())
	if !got.Equal(want) || gotCells != wantCells {
		t.Fatal("ineligible window diverged from scalar reference")
	}
}

// TestBarelyIneligibleForcedWideFallsBack pins the widened 16-lane
// range proof at its boundary: a window that misses eligibility by a
// hair must take the scalar path even when the caller forces wide
// dispatch (forceLanes overrides the measured work floor, never the
// proof), and must still produce the scalar result. With maxAbs=170
// the bound maxAbs*(V+n+16) <= 32000 admits V+n <= 172: a 90-base
// backbone re-aligned against itself (V=n=90, V+n=180) sits just
// outside, a 78-base one (V+n=156) just inside.
func TestBarelyIneligibleForcedWideFallsBack(t *testing.T) {
	p := Params{Match: 170, Mismatch: -170, Gap: -1}
	if laneEligible(p, 78, 78) != true {
		t.Fatal("V+n=156 should pass the widened range proof")
	}
	if laneEligible(p, 90, 90) {
		t.Fatal("V+n=180 should fail the widened range proof")
	}
	rng := rand.New(rand.NewSource(59))
	backbone := genome.Random(rng, 90)
	mutated := backbone.Clone()
	for k := 0; k < 6; k++ {
		mutated[rng.Intn(len(mutated))] = genome.Base(rng.Intn(4))
	}

	gs := New()
	gs.forceScalar = true
	gs.AddSequenceMode(backbone, p, GlobalMode)
	gs.AddSequenceMode(mutated, p, GlobalMode)

	gw := New()
	gw.forceLanes = true
	gw.AddSequenceMode(backbone, p, GlobalMode)
	gw.AddSequenceMode(mutated, p, GlobalMode)

	if len(gw.score16) != 0 {
		t.Fatal("barely-ineligible window still took the wide int16 path under forced dispatch")
	}
	if gw.NumNodes() != gs.NumNodes() || gw.NumEdges() != gs.NumEdges() {
		t.Fatal("fallback graph shape diverged from the scalar reference")
	}
	if !gw.Consensus().Equal(gs.Consensus()) {
		t.Fatal("fallback consensus diverged from the scalar reference")
	}
}

// TestCSRSnapshotInvalidation verifies the snapshot is rebuilt after
// every mutation kind — including the weight-only addEdge branch that
// leaves the topology (and the topo-order cache) untouched.
func TestCSRSnapshotInvalidation(t *testing.T) {
	g := New()
	a := g.addNode(0)
	b := g.addNode(1)
	g.addEdge(a, b, 1)
	c := g.csrSnapshot(g.topoOrder())
	if got := c.inW[0]; got != 1 {
		t.Fatalf("initial weight = %d, want 1", got)
	}
	g.addEdge(a, b, 2) // weight bump only: dirty stays false
	if g.csrOK {
		t.Fatal("weight-only addEdge must invalidate the CSR snapshot")
	}
	c = g.csrSnapshot(g.topoOrder())
	if got := c.inW[0]; got != 3 {
		t.Fatalf("weight after bump = %d, want 3", got)
	}
	g.addNode(2)
	if g.csrOK {
		t.Fatal("addNode must invalidate the CSR snapshot")
	}
	g.Reset()
	if g.csrOK {
		t.Fatal("Reset must invalidate the CSR snapshot")
	}
}

// TestLaneMinWorkDispatch pins the measured-profitability gate: an
// eligible window below the work floor must take the scalar path (its
// int16 table is never grown), and the floor at zero restores lanes.
// The consensus must not change either way — the floor is pure policy.
func TestLaneMinWorkDispatch(t *testing.T) {
	rng := rand.New(rand.NewSource(56))
	// Small window: every alignment's V*n stays well under the floor
	// cap, so pinning the floor to the cap must route all of them to
	// the scalar path.
	base := genome.Random(rng, 40)
	w := &Window{}
	for s := 0; s < 3; s++ {
		seq := base.Clone()
		seq[rng.Intn(len(seq))] = genome.Base(rng.Intn(4))
		w.Sequences = append(w.Sequences, seq)
	}
	p := DefaultParams()
	want, _ := ConsensusScalarInto(w, p, New())

	restore := lanes.WideMinWork.Set(lanes.WideMinWorkCap)
	g := New()
	got, _ := ConsensusInto(w, p, g)
	if len(g.score16) != 0 {
		t.Fatal("window below the work floor still took the lane path")
	}
	if !got.Equal(want) {
		t.Fatal("scalar-routed consensus diverged")
	}
	restore()

	defer lanes.WideMinWork.Set(0)()
	g = New()
	got, _ = ConsensusInto(w, p, g)
	if len(g.score16) == 0 {
		t.Fatal("zero work floor did not restore the lane path")
	}
	if !got.Equal(want) {
		t.Fatal("lane-routed consensus diverged")
	}
}

// TestProbeWideMinWork checks the microprobe returns an in-range,
// cap-respecting answer on this host.
func TestProbeWideMinWork(t *testing.T) {
	got := probeWideMinWork()
	if got < 0 || got > lanes.WideMinWorkCap {
		t.Fatalf("probe returned %d, out of [0, %d]", got, lanes.WideMinWorkCap)
	}
}

// BenchmarkAddSequenceLanes is the scalar-vs-lane single-thread pair
// on realistic windows (the BENCH_PR5 shape). The work floor is pinned
// to zero so both sides measure what their names promise regardless of
// the probe's verdict on the bench host.
func BenchmarkAddSequenceLanes(b *testing.B) {
	defer lanes.WideMinWork.Set(0)()
	rng := rand.New(rand.NewSource(55))
	windows := make([]*Window, 8)
	for i := range windows {
		windows[i] = randomWindow(rng)
	}
	p := DefaultParams()
	b.Run("scalar", func(b *testing.B) {
		g := New()
		for i := 0; i < b.N; i++ {
			ConsensusScalarInto(windows[i%len(windows)], p, g)
		}
	})
	b.Run("lanes", func(b *testing.B) {
		g := New()
		for i := 0; i < b.N; i++ {
			ConsensusInto(windows[i%len(windows)], p, g)
		}
	})
}
