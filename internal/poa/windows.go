package poa

import (
	"repro/internal/genome"
	"repro/internal/parallel"
	"repro/internal/simio"
)

// Window construction: Racon splits the draft assembly into fixed
// windows and carves each aligned read into per-window chunks using
// its CIGAR. This is the glue between the alignment records and the
// spoa kernel's Window tasks.

// BuildWindows partitions [0, len(draft)) into windowSize slices and
// assigns each alignment's bases to the windows they cover. Chunks
// shorter than minChunk bases are dropped (Racon discards fringe
// fragments that would only add noise). The draft's own sequence seeds
// every window so consensus is anchored even at low coverage.
func BuildWindows(draft genome.Seq, alignments []*simio.Alignment, windowSize, minChunk int) []*Window {
	if windowSize <= 0 {
		windowSize = 500
	}
	if minChunk <= 0 {
		minChunk = windowSize / 4
	}
	n := (len(draft) + windowSize - 1) / windowSize
	windows := make([]*Window, n)
	for i := range windows {
		lo := i * windowSize
		hi := lo + windowSize
		if hi > len(draft) {
			hi = len(draft)
		}
		windows[i] = &Window{Sequences: []genome.Seq{draft[lo:hi].Clone()}}
	}
	for _, a := range alignments {
		carveAlignment(a, windowSize, minChunk, windows)
	}
	return windows
}

// carveAlignment walks one CIGAR and appends the read bases covering
// each window.
func carveAlignment(a *simio.Alignment, windowSize, minChunk int, windows []*Window) {
	refPos := a.Pos
	readPos := 0
	chunkStart := -1 // read offset where the current window's chunk began
	curWin := -1
	flush := func(end int) {
		if curWin < 0 || chunkStart < 0 {
			return
		}
		if end-chunkStart >= minChunk && curWin < len(windows) {
			windows[curWin].Sequences = append(windows[curWin].Sequences,
				a.Seq[chunkStart:end].Clone())
		}
		chunkStart = -1
	}
	enter := func(win, readOff int) {
		if win != curWin {
			flush(readOff)
			curWin = win
			chunkStart = readOff
		}
	}
	for _, e := range a.Cigar {
		switch e.Op {
		case simio.CigarMatch:
			for i := 0; i < e.Len; i++ {
				enter(refPos/windowSize, readPos)
				refPos++
				readPos++
			}
		case simio.CigarIns:
			// Insertions stay with the current window's chunk.
			readPos += e.Len
		case simio.CigarDel:
			for i := 0; i < e.Len; i++ {
				enter(refPos/windowSize, readPos)
				refPos++
			}
		case simio.CigarSoftClip:
			flush(readPos)
			readPos += e.Len
			curWin = -1
		}
	}
	flush(readPos)
}

// Polish rebuilds the draft from window consensi: the Racon main loop.
// It returns the polished sequence and total DP cells computed.
func Polish(draft genome.Seq, alignments []*simio.Alignment, windowSize, minChunk, threads int, p Params) (genome.Seq, uint64) {
	windows := BuildWindows(draft, alignments, windowSize, minChunk)
	consensi := make([]genome.Seq, len(windows))
	cells := make([]uint64, len(windows))
	parallel.ForEach(len(windows), threads, func(_, i int) {
		consensi[i], cells[i] = ConsensusOf(windows[i], p)
	})
	var out genome.Seq
	var total uint64
	for i, c := range consensi {
		out = append(out, c...)
		total += cells[i]
	}
	return out, total
}
