// The measured wide-vs-scalar dispatch probe for the 16-wide tier.
//
// laneEligible (lanes.go) proves the int16 sweep is exact for a
// window; it says nothing about whether the sweep is FASTER. The lane
// path pays fixed setup per alignment — CSR snapshot, query packing,
// four match-mask builds — that the scalar path skips, so tiny
// windows can lose to scalar even when eligible. Where that
// break-even sits depends on the host, so it is measured once per
// process (and persisted per host class) instead of assumed.
//
// The floor itself lives in the lanes package (lanes.WideMinWork) so
// every wide consumer shares one host-class measurement; poa owns the
// probe because it runs the heaviest wide sweep: this init registers
// it via lanes.SetWideProbe. Pin with GBENCH_TUNE_LANES_WIDE_MIN_WORK,
// or GBENCH_TUNE=off for the default 0 (wide whenever eligible).
package poa

import (
	"repro/internal/genome"
	"repro/internal/lanes"
	"repro/internal/tuning"
)

func init() {
	lanes.SetWideProbe(probeWideMinWork)
}

// probeWideMinWork times full consensus builds with the path pinned
// each way (forceLanes / ConsensusScalarInto — both short-circuit the
// WideMinWork lookup, which is mid-resolution while the probe runs)
// at a few window sizes, and returns the smallest probed DP area from
// which lanes win and keep winning at every larger probed size. The
// sequences are identical copies, so the graph stays backbone-shaped
// and the area of every alignment after the first is exactly L*L.
func probeWideMinWork() int {
	sizes := [...]int{8, 16, 32, 64}
	p := DefaultParams()
	mkWindow := func(l int) *Window {
		seq := make(genome.Seq, l)
		for i := range seq {
			seq[i] = genome.Base(i & 3)
		}
		w := &Window{}
		for k := 0; k < 3; k++ {
			w.Sequences = append(w.Sequences, seq)
		}
		return w
	}

	const reps, iters = 3, 20
	laneNs := make([]float64, len(sizes))
	scalarNs := make([]float64, len(sizes))
	gl, gs := New(), New()
	gl.forceLanes = true
	for si, l := range sizes {
		w := mkWindow(l)
		laneNs[si] = tuning.BestNs(reps, iters, func() { ConsensusInto(w, p, gl) })
		scalarNs[si] = tuning.BestNs(reps, iters, func() { ConsensusScalarInto(w, p, gs) })
	}

	threshold := lanes.WideMinWorkCap
	for si := len(sizes) - 1; si >= 0; si-- {
		if laneNs[si] > scalarNs[si] {
			break
		}
		threshold = sizes[si] * sizes[si]
	}
	if threshold == sizes[0]*sizes[0] {
		// Lanes won at every probed size, including the smallest: no
		// evidence of a scalar regime at all.
		return 0
	}
	return threshold
}
