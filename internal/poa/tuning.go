// Measured lanes-vs-scalar dispatch for AddSequence.
//
// laneEligible (lanes.go) proves the int16 sweep is exact for a
// window; it says nothing about whether the sweep is FASTER. The lane
// path pays fixed setup per alignment — CSR snapshot, query packing,
// four match-mask builds — that the scalar path skips, so tiny
// windows can lose to scalar even when eligible. Where that
// break-even sits depends on the host, so it is measured once per
// process by a microprobe instead of assumed: windows whose DP area
// V*n falls below laneMinWork take the scalar path.
//
// Pin with GBENCH_TUNE_POA_LANE_MIN_WORK, or GBENCH_TUNE=off for the
// default 0 (lanes whenever eligible — PR5's static policy).
package poa

import (
	"repro/internal/genome"
	"repro/internal/tuning"
)

// laneMinWorkCap bounds the probe's answer: a measurement can turn
// lanes off for small windows, not disable them wholesale.
const laneMinWorkCap = 1 << 14

// Constructed in init: the probe runs full consensus builds, so a
// plain var initializer would form a static reference cycle with the
// dispatch site that reads the tunable (the short-circuit hooks break
// the cycle at runtime, but the compiler can't see that).
var laneMinWork *tuning.Int

func init() {
	laneMinWork = tuning.NewInt("poa.lane_min_work", 0, 0, laneMinWorkCap, probeLaneMinWork)
}

// probeLaneMinWork times full consensus builds with the path pinned
// each way (forceLanes / ConsensusScalarInto — both short-circuit the
// laneMinWork lookup, which is mid-resolution while the probe runs)
// at a few window sizes, and returns the smallest probed DP area from
// which lanes win and keep winning at every larger probed size. The
// sequences are identical copies, so the graph stays backbone-shaped
// and the area of every alignment after the first is exactly L*L.
func probeLaneMinWork() int {
	sizes := [...]int{8, 16, 32, 64}
	p := DefaultParams()
	mkWindow := func(l int) *Window {
		seq := make(genome.Seq, l)
		for i := range seq {
			seq[i] = genome.Base(i & 3)
		}
		w := &Window{}
		for k := 0; k < 3; k++ {
			w.Sequences = append(w.Sequences, seq)
		}
		return w
	}

	const reps, iters = 3, 20
	laneNs := make([]float64, len(sizes))
	scalarNs := make([]float64, len(sizes))
	gl, gs := New(), New()
	gl.forceLanes = true
	for si, l := range sizes {
		w := mkWindow(l)
		laneNs[si] = tuning.BestNs(reps, iters, func() { ConsensusInto(w, p, gl) })
		scalarNs[si] = tuning.BestNs(reps, iters, func() { ConsensusScalarInto(w, p, gs) })
	}

	threshold := laneMinWorkCap
	for si := len(sizes) - 1; si >= 0; si-- {
		if laneNs[si] > scalarNs[si] {
			break
		}
		threshold = sizes[si] * sizes[si]
	}
	if threshold == sizes[0]*sizes[0] {
		// Lanes won at every probed size, including the smallest: no
		// evidence of a scalar regime at all.
		return 0
	}
	return threshold
}
