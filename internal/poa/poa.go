// Package poa implements the partial-order alignment kernel from Racon
// (the spoa library): window sequences are aligned one by one against a
// partial-order graph with a dynamic-programming pass whose complexity
// is O((2*np+1) * n * |V|) — every graph node row consults all its
// in-edges — then fused into the graph, and the window consensus is
// extracted with the heaviest-bundle algorithm.
package poa

import (
	"context"
	"errors"

	"repro/internal/faultinject"
	"repro/internal/genome"
	"repro/internal/lanes"
	"repro/internal/parallel"
	"repro/internal/perf"
	"repro/internal/scratch"
)

// Params are alignment scores (global alignment with linear gaps, the
// configuration Racon uses for window consensus).
type Params struct {
	Match    int32
	Mismatch int32 // negative
	Gap      int32 // negative
}

// DefaultParams mirrors Racon's defaults (match 3, mismatch -5, gap -4).
func DefaultParams() Params {
	return Params{Match: 3, Mismatch: -5, Gap: -4}
}

// edge is a weighted directed edge.
type edge struct {
	to     int32
	weight int32
}

// node is one graph vertex: a base supported by reads.
type node struct {
	base      genome.Base
	out       []edge
	in        []edge // reversed edges, weights mirrored
	alignedTo []int32
}

// aligned is one backtracked (nodeID, seqPos) pair.
type aligned struct {
	node int32 // -1 when the base is an insertion
	pos  int32 // -1 when the node is a deletion
}

// Graph is a partial-order alignment graph.
type Graph struct {
	nodes []node
	topo  []int32 // topological order, maintained after each AddSequence
	dirty bool

	// CellUpdates counts DP cells computed across all alignments, the
	// kernel's data-parallel unit in the paper's Table III.
	CellUpdates uint64

	// Grow-only working storage reused across AddSequence/Consensus
	// calls (and, via Reset, across windows), so the steady-state DP
	// never reallocates its rows.
	indeg      []int32
	queue      []int32
	rank       []int32
	score      []int32
	moveT      []uint8
	movePred   []int32
	path       []aligned
	consScores []int64
	consPred   []int32
	consRev    genome.Seq

	// Lane-path state (lanes.go): the int16 score rows, the 2-bit
	// packed query, per-base dense match masks, and the CSR graph
	// snapshot the row sweep streams instead of the node/edge lists.
	score16  []int16
	packBuf  []uint64
	maskBits [4][]uint64
	predOff  []int64
	csr      csr
	csrOK    bool

	// forceScalar pins AddSequence to the scalar int32 reference path
	// (set via ConsensusScalarInto, and by differential tests).
	// forceLanes pins eligible windows to the lane path regardless of
	// the measured lanes.WideMinWork floor (differential tests and the
	// tuning microprobe, which must not consult the tunable it feeds).
	// forceScalar wins when both are set.
	forceScalar bool
	forceLanes  bool
}

// New creates an empty graph.
func New() *Graph { return &Graph{} }

// Reset clears the graph for reuse on a new window, retaining node,
// edge, and DP scratch storage. A worker that processes many windows
// with one Reset graph reaches a steady state where alignment costs no
// heap allocations beyond the returned consensus.
func (g *Graph) Reset() {
	g.nodes = g.nodes[:0]
	g.dirty = true
	g.csrOK = false
	g.CellUpdates = 0
}

// NumNodes returns the vertex count.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumEdges returns the directed edge count.
func (g *Graph) NumEdges() int {
	n := 0
	for i := range g.nodes {
		n += len(g.nodes[i].out)
	}
	return n
}

func (g *Graph) addNode(b genome.Base) int32 {
	if len(g.nodes) < cap(g.nodes) {
		// Re-extend into storage kept by Reset, truncating the stale
		// entry's edge lists in place so their capacity carries over.
		g.nodes = g.nodes[:len(g.nodes)+1]
		nd := &g.nodes[len(g.nodes)-1]
		nd.base = b
		nd.out = nd.out[:0]
		nd.in = nd.in[:0]
		nd.alignedTo = nd.alignedTo[:0]
	} else {
		g.nodes = append(g.nodes, node{base: b})
	}
	g.dirty = true
	g.csrOK = false
	return int32(len(g.nodes) - 1)
}

func (g *Graph) addEdge(from, to int32, w int32) {
	// Every branch invalidates the CSR snapshot: a weight bump on an
	// existing edge leaves the topology (and g.dirty) alone, but the
	// snapshot caches weights for the consensus pass.
	g.csrOK = false
	for i := range g.nodes[from].out {
		if g.nodes[from].out[i].to == to {
			g.nodes[from].out[i].weight += w
			for j := range g.nodes[to].in {
				if g.nodes[to].in[j].to == from {
					g.nodes[to].in[j].weight += w
					return
				}
			}
			return
		}
	}
	g.nodes[from].out = append(g.nodes[from].out, edge{to, w})
	g.nodes[to].in = append(g.nodes[to].in, edge{from, w})
	g.dirty = true
}

// ErrCycle reports a partial-order graph that is no longer acyclic.
// A well-formed POA graph is a DAG by construction; hitting this means
// the graph was corrupted (a kernel bug or injected fault).
var ErrCycle = errors.New("poa: graph has a cycle")

// topoOrder returns (computing if needed) a topological order via
// Kahn's algorithm. It panics on a cyclic graph; callers that prefer
// errors use topoOrderChecked via the Checked API.
func (g *Graph) topoOrder() []int32 {
	order, err := g.topoOrderChecked()
	if err != nil {
		panic(err.Error())
	}
	return order
}

// topoOrderChecked is topoOrder returning ErrCycle instead of panicking.
func (g *Graph) topoOrderChecked() ([]int32, error) {
	if !g.dirty && g.topo != nil {
		return g.topo, nil
	}
	n := len(g.nodes)
	g.indeg = scratch.Grow(g.indeg, n)
	indeg := g.indeg
	clear(indeg)
	for i := range g.nodes {
		for _, e := range g.nodes[i].out {
			indeg[e.to]++
		}
	}
	order := g.topo[:0]
	queue := g.queue[:0]
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			queue = append(queue, int32(i))
		}
	}
	for qi := 0; qi < len(queue); qi++ {
		v := queue[qi]
		order = append(order, v)
		for _, e := range g.nodes[v].out {
			indeg[e.to]--
			if indeg[e.to] == 0 {
				queue = append(queue, e.to)
			}
		}
	}
	g.queue = queue
	if len(order) != n {
		return nil, ErrCycle
	}
	g.topo = order
	g.dirty = false
	return order, nil
}

// move codes for backtracking.
const (
	moveNone  = 0
	moveDiag  = 1 // consume graph node + sequence base
	moveUp    = 2 // consume graph node (deletion in sequence)
	moveLeft  = 3 // consume sequence base (insertion)
	moveStart = 4
)

// AlignMode selects how a sequence is placed against the graph.
type AlignMode int

// Alignment modes.
const (
	// GlobalMode aligns the whole sequence against a full source-to-
	// sink path of the graph (Racon's window-consensus setting).
	GlobalMode AlignMode = iota
	// FitMode aligns the whole sequence against any contiguous part of
	// the graph: leading and trailing graph nodes are free. Used when
	// fusing a short chunk into a longer window graph.
	FitMode
)

// AddSequence aligns seq to the graph (global alignment) and fuses it
// in, updating edge weights. The first sequence simply seeds a linear
// backbone.
func (g *Graph) AddSequence(seq genome.Seq, p Params) {
	g.AddSequenceMode(seq, p, GlobalMode)
}

// AddSequenceChecked is AddSequence returning ErrCycle instead of
// panicking when the graph has been corrupted into a cycle.
func (g *Graph) AddSequenceChecked(seq genome.Seq, p Params) error {
	return g.AddSequenceModeChecked(seq, p, GlobalMode)
}

// AddSequenceModeChecked is AddSequenceMode returning ErrCycle instead
// of panicking. The cycle check runs up front; alignment and fusion
// only ever extend a valid DAG, so a graph that passes cannot panic
// mid-update.
func (g *Graph) AddSequenceModeChecked(seq genome.Seq, p Params, mode AlignMode) error {
	if len(seq) > 0 && len(g.nodes) > 0 {
		if _, err := g.topoOrderChecked(); err != nil {
			return err
		}
	}
	g.AddSequenceMode(seq, p, mode)
	return nil
}

// AddSequenceMode is AddSequence with an explicit alignment mode.
func (g *Graph) AddSequenceMode(seq genome.Seq, p Params, mode AlignMode) {
	if len(seq) == 0 {
		return
	}
	if len(g.nodes) == 0 {
		prev := int32(-1)
		for _, b := range seq {
			id := g.addNode(b)
			if prev >= 0 {
				g.addEdge(prev, id, 1)
			}
			prev = id
		}
		return
	}
	order := g.topoOrder()
	n := len(seq)
	V := len(order)
	// Lane dispatch is two independent questions: laneEligible is the
	// int16 range proof (correctness — never overridden),
	// lanes.WideMinWork the measured profitability floor on V*n
	// (policy — forceLanes short-circuits it so forced paths and the
	// microprobe never consult the tunable mid-resolution).
	if !g.forceScalar && laneEligible(p, V, n) &&
		(g.forceLanes || V*n >= lanes.WideMinWork.Get()) {
		g.addSequenceLanes(seq, p, mode, order)
		return
	}
	// rank[v] is the DP row of node v. All DP buffers are grow-only
	// graph scratch; every cell the recurrence reads is written first
	// (plus the explicit score[0] seed), so stale contents are inert.
	g.rank = scratch.Grow(g.rank, len(g.nodes))
	rank := g.rank
	for r, v := range order {
		rank[v] = int32(r)
	}
	width := n + 1
	g.score = scratch.Grow(g.score, (V+1)*width)
	g.moveT = scratch.Grow(g.moveT, (V+1)*width)
	g.movePred = scratch.Grow(g.movePred, (V+1)*width)
	score, moveT, movePred := g.score, g.moveT, g.movePred
	// Row 0 is the virtual start (no graph node consumed).
	score[0] = 0
	for j := 1; j <= n; j++ {
		score[j] = int32(j) * p.Gap
		moveT[j] = moveLeft
	}
	moveT[0] = moveStart
	// Node rows in topological order.
	for r, v := range order {
		row := (r + 1) * width
		nd := &g.nodes[v]
		// Column 0: consume graph nodes only. In FitMode leading graph
		// nodes are free, so every row restarts at zero.
		if mode == FitMode {
			score[row] = 0
			moveT[row] = moveStart
			movePred[row] = 0
		} else {
			best0 := int32(p.Gap) // from virtual start
			bestP0 := int32(0)    // row index of predecessor (0 = start)
			if len(nd.in) > 0 {
				first := true
				for _, e := range nd.in {
					pr := int32(rank[e.to]) + 1
					s := score[pr*int32(width)] + p.Gap
					if first || s > best0 {
						best0 = s
						bestP0 = pr
						first = false
					}
				}
			}
			score[row] = best0
			moveT[row] = moveUp
			movePred[row] = bestP0
		}
		for j := 1; j <= n; j++ {
			g.CellUpdates++
			sub := p.Mismatch
			if nd.base == seq[j-1] {
				sub = p.Match
			}
			var best int32
			var bestMove uint8
			var bestPred int32
			if len(nd.in) == 0 {
				// Predecessor is the virtual start row.
				best = score[j-1] + sub
				bestMove = moveDiag
				bestPred = 0
				if s := score[j] + p.Gap; s > best {
					best = s
					bestMove = moveUp
					bestPred = 0
				}
			} else {
				first := true
				for _, e := range nd.in {
					pr := (int32(rank[e.to]) + 1) * int32(width)
					if s := score[pr+int32(j-1)] + sub; first || s > best {
						best = s
						bestMove = moveDiag
						bestPred = (int32(rank[e.to]) + 1)
						first = false
					}
					if s := score[pr+int32(j)] + p.Gap; s > best {
						best = s
						bestMove = moveUp
						bestPred = (int32(rank[e.to]) + 1)
					}
				}
			}
			if s := score[row+j-1] + p.Gap; s > best {
				best = s
				bestMove = moveLeft
				bestPred = int32(r + 1)
			}
			score[row+j] = best
			moveT[row+j] = bestMove
			movePred[row+j] = bestPred
		}
	}
	// Global alignment ends having consumed the whole sequence at some
	// graph sink (node with no out-edges); fit alignment may end at any
	// node (trailing graph is free). Pick the best admissible row.
	endRow := int32(-1)
	var endScore int32
	for r, v := range order {
		if mode == GlobalMode && len(g.nodes[v].out) != 0 {
			continue
		}
		s := score[(r+1)*width+n]
		if endRow < 0 || s > endScore {
			endRow = int32(r + 1)
			endScore = s
		}
	}
	if endRow < 0 {
		endRow = int32(V)
	}
	g.backtrackMoves(order, width, endRow, n)
	g.fusePath(seq)
}

// backtrackMoves walks the stored move/pred tables from endRow and
// collects the (nodeID, seqPos) alignment pairs, end to start, into
// g.path.
func (g *Graph) backtrackMoves(order []int32, width int, endRow int32, n int) {
	moveT, movePred := g.moveT, g.movePred
	path := g.path[:0]
	r, j := endRow, n
	for {
		cell := r*int32(width) + int32(j)
		switch moveT[cell] {
		case moveDiag:
			path = append(path, aligned{order[r-1], int32(j - 1)})
			r = movePred[cell]
			j--
		case moveUp:
			path = append(path, aligned{order[r-1], -1})
			r = movePred[cell]
		case moveLeft:
			path = append(path, aligned{-1, int32(j - 1)})
			j--
		default:
			g.path = path
			return
		}
	}
}

// fusePath fuses the alignment pairs in g.path (stored end to start)
// into the graph, adding nodes for insertions and mismatches and
// bumping edge weights along the walked path.
func (g *Graph) fusePath(seq genome.Seq) {
	path := g.path
	prevNode := int32(-1)
	for i := len(path) - 1; i >= 0; i-- {
		a := path[i]
		if a.pos < 0 {
			continue // deletion: sequence skips this node
		}
		b := seq[a.pos]
		var cur int32
		if a.node >= 0 && g.nodes[a.node].base == b {
			cur = a.node
		} else if a.node >= 0 {
			// Mismatch: reuse an aligned sibling with this base, or
			// create one.
			cur = -1
			for _, alt := range g.nodes[a.node].alignedTo {
				if g.nodes[alt].base == b {
					cur = alt
					break
				}
			}
			if cur < 0 {
				cur = g.addNode(b)
				// Link the new node into the aligned group.
				group := append([]int32{a.node}, g.nodes[a.node].alignedTo...)
				for _, m := range group {
					g.nodes[m].alignedTo = append(g.nodes[m].alignedTo, cur)
					g.nodes[cur].alignedTo = append(g.nodes[cur].alignedTo, m)
				}
			}
		} else {
			cur = g.addNode(b) // insertion
		}
		if prevNode >= 0 {
			g.addEdge(prevNode, cur, 1)
		}
		prevNode = cur
	}
}

// Consensus extracts the heaviest-bundle path: per node, the best
// in-edge by weight (ties by predecessor score) defines a predecessor;
// the highest-scoring end node is traced back. The pass streams the
// CSR snapshot in rank order — flat offsets, weights, and bases with
// no node/edge pointer chasing — and is output-identical to the
// node-list form because the snapshot preserves both topological
// iteration order and per-node in-edge order.
func (g *Graph) Consensus() genome.Seq {
	if len(g.nodes) == 0 {
		return nil
	}
	order := g.topoOrder()
	c := g.csrSnapshot(order)
	V := len(order)
	g.consScores = scratch.Grow(g.consScores, V)
	g.consPred = scratch.Grow(g.consPred, V)
	scores, pred := g.consScores, g.consPred
	clear(scores)
	for i := range pred {
		pred[i] = -1
	}
	for r := 0; r < V; r++ {
		for k := c.inOff[r]; k < c.inOff[r+1]; k++ {
			pr := c.in[k] - 1 // in[] holds DP rows (rank+1)
			s := scores[pr] + int64(c.inW[k])
			if pred[r] < 0 || s > scores[r] {
				scores[r] = s
				pred[r] = pr
			}
		}
	}
	best := int32(0)
	for r := int32(1); r < int32(V); r++ {
		if scores[r] > scores[best] {
			best = r
		}
	}
	rev := g.consRev[:0]
	for at := best; at >= 0; at = pred[at] {
		rev = append(rev, genome.Base(c.bases[at]))
	}
	g.consRev = rev
	// The consensus escapes to the caller; it is the one allocation a
	// pooled window evaluation keeps.
	out := make(genome.Seq, len(rev))
	for i, b := range rev {
		out[len(rev)-1-i] = b
	}
	return out
}

// ConsensusChecked is Consensus returning ErrCycle instead of
// panicking when the graph has been corrupted into a cycle.
func (g *Graph) ConsensusChecked() (genome.Seq, error) {
	if len(g.nodes) == 0 {
		return nil, nil
	}
	if _, err := g.topoOrderChecked(); err != nil {
		return nil, err
	}
	return g.Consensus(), nil
}

// Window is one consensus task: the read chunks covering one target
// window, processed on a single thread as in Racon.
type Window struct {
	Sequences []genome.Seq
}

// ConsensusOf builds the POA for a window and returns its consensus
// plus the DP cells computed.
func ConsensusOf(w *Window, p Params) (genome.Seq, uint64) {
	return ConsensusInto(w, p, New())
}

// ConsensusInto is ConsensusOf reusing g's node, edge, and DP storage:
// the graph is Reset and rebuilt, so a worker looping over windows
// with one graph stops allocating once its buffers have grown to the
// largest window seen. The returned consensus is freshly allocated and
// safe to retain.
func ConsensusInto(w *Window, p Params, g *Graph) (genome.Seq, uint64) {
	g.Reset()
	for _, s := range w.Sequences {
		g.AddSequence(s, p)
	}
	return g.Consensus(), g.CellUpdates
}

// ConsensusScalarInto is ConsensusInto pinned to the scalar int32
// reference DP: the lane path is the optimization under test, so the
// benchmark pair and the differential suite need the unoptimized side
// on demand regardless of window eligibility.
func ConsensusScalarInto(w *Window, p Params, g *Graph) (genome.Seq, uint64) {
	g.forceScalar = true
	defer func() { g.forceScalar = false }()
	return ConsensusInto(w, p, g)
}

// KernelResult aggregates a poa benchmark execution.
type KernelResult struct {
	Windows     int
	CellUpdates uint64
	Consensi    []genome.Seq
	TaskStats   *perf.TaskStats
	Counters    perf.Counters
}

// RunKernel computes every window consensus with dynamic scheduling.
// It panics on failure; cancellable callers use RunKernelCtx.
func RunKernel(windows []*Window, p Params, threads int) KernelResult {
	res, err := RunKernelCtx(context.Background(), windows, p, threads)
	if err != nil {
		panic(err)
	}
	return res
}

// RunKernelCtx is RunKernel with cooperative cancellation and a fault
// trip-point per window.
func RunKernelCtx(ctx context.Context, windows []*Window, p Params, threads int) (KernelResult, error) {
	if threads <= 0 {
		threads = 1
	}
	consensi := make([]genome.Seq, len(windows))
	type ws struct {
		cells uint64
		stats *perf.TaskStats
		graph *Graph
		_     perf.CacheLinePad // workers update these per task; keep shards on private cache lines
	}
	workers := make([]ws, threads)
	for i := range workers {
		workers[i].stats = perf.NewTaskStats("cell updates")
		workers[i].graph = New()
	}
	// Windows vary ~10x in cell count (graph size times read coverage),
	// so dispatch goes through the work-stealing scheduler: each worker
	// owns a contiguous block of windows and idle workers steal from
	// the most loaded, instead of every dispatch bouncing the shared
	// counter's cache line.
	err := parallel.ForEachStealingErr(ctx, len(windows), threads, func(tctx context.Context, w, i int) error {
		if err := faultinject.Point(tctx); err != nil {
			return err
		}
		cons, cells := ConsensusInto(windows[i], p, workers[w].graph)
		consensi[i] = cons
		workers[w].cells += cells
		workers[w].stats.Observe(float64(cells))
		return nil
	})
	if err != nil {
		return KernelResult{}, err
	}
	res := KernelResult{Windows: len(windows), Consensi: consensi, TaskStats: perf.NewTaskStats("cell updates")}
	for i := range workers {
		res.CellUpdates += workers[i].cells
		res.TaskStats.Merge(workers[i].stats)
	}
	// spoa vectorizes the row DP with shifts/blends; graph updates add
	// pointer-chasing loads.
	res.Counters.Add(perf.VecOp, res.CellUpdates*4)
	res.Counters.Add(perf.IntALU, res.CellUpdates*2)
	res.Counters.Add(perf.Load, res.CellUpdates*3)
	res.Counters.Add(perf.Store, res.CellUpdates)
	res.Counters.Add(perf.Branch, res.CellUpdates/2)
	return res, nil
}
