// NEON 16-wide row kernel for the POA lane sweep. A q-register pair
// (lanes 0-7, 8-15) holds one 16-column group of saturating int16 DP
// cells; see row_wide.go for the kernel contract and why the log-step
// prefix-max gap scan is bit-identical to the portable serial chain
// for gap <= 0.
//
// The Go arm64 assembler has no mnemonics for the signed saturating /
// max vector ops this kernel is built from (SQADD, SMAX), so those
// are emitted as raw instruction words through the macros below.
// Encodings are the AdvSIMD "three same" class at arrangement .8H
// (Q=1, size=01): base | Rm<<16 | Rn<<5 | Rd, verified against
// llvm-mc. Every use carries the decoded form as a comment.

#include "textflag.h"

// SQADDH: sqadd v(d).8h, v(n).8h, v(m).8h
#define SQADDH(m, n, d) WORD $(0x4E600C00 | ((m)<<16) | ((n)<<5) | (d))
// SMAXH: smax v(d).8h, v(n).8h, v(m).8h
#define SMAXH(m, n, d) WORD $(0x4E606400 | ((m)<<16) | ((n)<<5) | (d))

// poaBitsTab: words [1, 2, ..., 0x8000]; see row_amd64.s.
DATA poaBitsTab<>+0x00(SB)/8, $0x0008000400020001
DATA poaBitsTab<>+0x08(SB)/8, $0x0080004000200010
DATA poaBitsTab<>+0x10(SB)/8, $0x0800040002000100
DATA poaBitsTab<>+0x18(SB)/8, $0x8000400020001000
GLOBL poaBitsTab<>(SB), RODATA|NOPTR, $32

// Register plan:
//   V0 match   V1 mism    V2 gap     V3 2*gap   V4 4*gap   V5 8*gap
//   V6 -32768  V7 bits lo V8 bits hi V9 lane-0 word mask
//   V10/V11 best lo/hi    V12-V17 temps

// func poaRowAsm(a *poaRowArgs)
TEXT ·poaRowAsm(SB), NOSPLIT, $0-8
	MOVD a+0(FP), R0
	MOVD 0(R0), R1              // score base
	MOVD 8(R0), R2              // predOff
	MOVD 16(R0), R3             // mask words
	MOVD 24(R0), R4             // rowOff (elements)
	ADD  R4<<1, R1, R4          // &score[rowOff]
	MOVD 32(R0), R5             // npred
	MOVD 40(R0), R6             // ngroups
	MOVH 48(R0), R11
	VDUP R11, V0.H8             // match
	MOVH 50(R0), R11
	VDUP R11, V1.H8             // mism
	MOVH 52(R0), R11
	VDUP R11, V2.H8             // gap
	SQADDH(2, 2, 3)             // sqadd v3.8h, v2.8h, v2.8h: 2*gap
	SQADDH(3, 3, 4)             // sqadd v4.8h, v3.8h, v3.8h: 4*gap
	SQADDH(4, 4, 5)             // sqadd v5.8h, v4.8h, v4.8h: 8*gap
	VMOVQ $0x8000800080008000, $0x8000800080008000, V6
	MOVD $poaBitsTab<>(SB), R11
	VLD1 (R11), [V7.H8, V8.H8]
	VMOVQ $0x000000000000FFFF, $0x0000000000000000, V9
	MOVD $0, R7                 // gi

groups:
	// subv: broadcast the group's 16 match bits, test against the bit
	// table, select match/mism. V14 = lanes 0-7, V15 = lanes 8-15.
	ADD  R7<<1, R3, R11
	MOVHU (R11), R11
	VDUP R11, V13.H8
	VAND V7.B16, V13.B16, V14.B16
	VCMEQ V7.H8, V14.H8, V14.H8
	VAND V8.B16, V13.B16, V15.B16
	VCMEQ V8.H8, V15.H8, V15.H8
	VBSL V1.B16, V0.B16, V14.B16 // mask ? match : mism
	VBSL V1.B16, V0.B16, V15.B16

	// Vertical candidates: running max over diag+up per predecessor.
	VMOV V6.B16, V10.B16
	VMOV V6.B16, V11.B16
	LSL  $5, R7, R10            // 32*gi: byte offset of column j0-1
	MOVD R2, R8
	MOVD R5, R9
predloop:
	MOVD (R8), R11              // predecessor row element offset
	ADD  R11<<1, R1, R11
	ADD  R10, R11, R12          // &score[prow + j0-1]
	VLD1 (R12), [V16.H8, V17.H8]
	SQADDH(14, 16, 16)          // sqadd v16.8h, v16.8h, v14.8h: diag + sub
	SMAXH(16, 10, 10)           // smax  v10.8h, v10.8h, v16.8h
	SQADDH(15, 17, 17)          // sqadd v17.8h, v17.8h, v15.8h
	SMAXH(17, 11, 11)           // smax  v11.8h, v11.8h, v17.8h
	ADD  $2, R12, R13
	VLD1 (R13), [V16.H8, V17.H8]
	SQADDH(2, 16, 16)           // sqadd v16.8h, v16.8h, v2.8h: up + gap
	SMAXH(16, 10, 10)           // smax  v10.8h, v10.8h, v16.8h
	SQADDH(2, 17, 17)           // sqadd v17.8h, v17.8h, v2.8h
	SMAXH(17, 11, 11)           // smax  v11.8h, v11.8h, v17.8h
	ADD  $8, R8
	SUBS $1, R9, R9
	BNE  predloop

	// Left-chain carry from the finished column j0-1: lane 0 gets
	// sat(carry+gap), the rest the sentinel (max no-ops, so only the
	// low half needs the max).
	ADD  R10, R4, R12
	MOVHU (R12), R11
	VDUP R11, V16.H8
	SQADDH(2, 16, 16)           // sqadd v16.8h, v16.8h, v2.8h: carry+gap
	VMOV V9.B16, V17.B16
	VBSL V6.B16, V16.B16, V17.B16 // lane 0 ? carry+gap : sentinel
	SMAXH(17, 10, 10)           // smax v10.8h, v10.8h, v17.8h

	// Log-step prefix-max gap scan (shift up 1, 2, 4, 8 lanes with
	// sentinel fill; see row_amd64.s).
	VEXT $14, V10.B16, V6.B16, V13.B16  // lo shifted up 1 word
	VEXT $14, V11.B16, V10.B16, V14.B16 // hi shifted up 1 word
	SQADDH(2, 13, 13)           // sqadd v13.8h, v13.8h, v2.8h
	SQADDH(2, 14, 14)           // sqadd v14.8h, v14.8h, v2.8h
	SMAXH(13, 10, 10)           // smax  v10.8h, v10.8h, v13.8h
	SMAXH(14, 11, 11)           // smax  v11.8h, v11.8h, v14.8h
	VEXT $12, V10.B16, V6.B16, V13.B16  // shift up 2 words
	VEXT $12, V11.B16, V10.B16, V14.B16
	SQADDH(3, 13, 13)           // sqadd v13.8h, v13.8h, v3.8h
	SQADDH(3, 14, 14)           // sqadd v14.8h, v14.8h, v3.8h
	SMAXH(13, 10, 10)
	SMAXH(14, 11, 11)
	VEXT $8, V10.B16, V6.B16, V13.B16   // shift up 4 words
	VEXT $8, V11.B16, V10.B16, V14.B16
	SQADDH(4, 13, 13)           // sqadd v13.8h, v13.8h, v4.8h
	SQADDH(4, 14, 14)           // sqadd v14.8h, v14.8h, v4.8h
	SMAXH(13, 10, 10)
	SMAXH(14, 11, 11)
	// Shift up 8 words: shifted lo is all sentinel (max no-op), hi is
	// the current lo.
	SQADDH(5, 10, 13)           // sqadd v13.8h, v10.8h, v5.8h
	SMAXH(13, 11, 11)           // smax  v11.8h, v11.8h, v13.8h

	ADD  R10, R4, R12
	ADD  $2, R12, R12
	VST1 [V10.H8, V11.H8], (R12) // store columns j0..j0+15
	ADD  $1, R7
	CMP  R6, R7
	BLT  groups

	RET
