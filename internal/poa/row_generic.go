//go:build !amd64 && !arm64

package poa

// poaHaveWideAsm reports whether this architecture has an assembly
// row kernel compiled in.
const poaHaveWideAsm = false

// poaRowWide on architectures without an asm kernel is the portable
// body; the dispatch guard (poaHaveWideAsm && cpufeat.Wide16()) means
// it is never actually reached here, but keeping it callable lets the
// dispatch site compile unconditionally.
func poaRowWide(score []int16, predOff []int64, mask []uint64, rowOff, ngroups int, match, mism, gap int16) {
	poaRowPortable(score, predOff, mask, rowOff, ngroups, match, mism, gap)
}
