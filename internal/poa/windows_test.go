package poa

import (
	"math/rand"
	"testing"

	"repro/internal/genome"
	"repro/internal/simio"
)

func TestBuildWindowsSeedsDraft(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	draft := genome.Random(rng, 1100)
	windows := BuildWindows(draft, nil, 500, 100)
	if len(windows) != 3 {
		t.Fatalf("got %d windows", len(windows))
	}
	if !windows[0].Sequences[0].Equal(draft[:500]) {
		t.Error("window 0 not seeded with draft slice")
	}
	if !windows[2].Sequences[0].Equal(draft[1000:]) {
		t.Error("tail window not seeded")
	}
}

func TestBuildWindowsCarvesAlignments(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	draft := genome.Random(rng, 1000)
	// One clean alignment spanning both windows.
	cig, _ := simio.ParseCigar("800M")
	a := &simio.Alignment{
		ReadName: "r", RefName: "d", Pos: 100,
		Cigar: cig, Seq: draft[100:900].Clone(),
	}
	windows := BuildWindows(draft, []*simio.Alignment{a}, 500, 100)
	if len(windows[0].Sequences) != 2 {
		t.Fatalf("window 0 has %d sequences, want draft + chunk", len(windows[0].Sequences))
	}
	// Window 0 chunk covers ref [100,500) -> read offsets [0,400).
	if !windows[0].Sequences[1].Equal(draft[100:500]) {
		t.Error("window 0 chunk wrong")
	}
	// Window 1 chunk covers ref [500,900).
	if len(windows[1].Sequences) != 2 || !windows[1].Sequences[1].Equal(draft[500:900]) {
		t.Error("window 1 chunk wrong")
	}
}

func TestBuildWindowsDropsShortChunks(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	draft := genome.Random(rng, 1000)
	cig, _ := simio.ParseCigar("30M")
	a := &simio.Alignment{ReadName: "r", Pos: 490, Cigar: cig, Seq: draft[490:520].Clone()}
	windows := BuildWindows(draft, []*simio.Alignment{a}, 500, 100)
	// 10 bases in window 0 and 20 in window 1: both below minChunk.
	if len(windows[0].Sequences) != 1 || len(windows[1].Sequences) != 1 {
		t.Error("short chunks not dropped")
	}
}

func TestPolishImprovesNoisyDraft(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	truth := genome.Random(rng, 1500)
	// Draft with scattered errors (a raw long-read assembly).
	draft := truth.Clone()
	for i := 0; i < 30; i++ {
		draft[rng.Intn(len(draft))] = genome.Base(rng.Intn(4))
	}
	// Accurate reads aligned to the draft at their true positions.
	var alns []*simio.Alignment
	for i := 0; i+400 <= len(truth); i += 80 {
		cig, _ := simio.ParseCigar("400M")
		alns = append(alns, &simio.Alignment{
			ReadName: "r", Pos: i, Cigar: cig, Seq: truth[i : i+400].Clone(),
		})
	}
	// A small minChunk keeps window-boundary fragments, which carry the
	// only coverage over the first/last bases of each window.
	polished, cells := Polish(draft, alns, 500, 20, 2, DefaultParams())
	if cells == 0 {
		t.Fatal("no DP cells computed")
	}
	before := editDist(draft, truth)
	after := editDist(polished, truth)
	if after >= before {
		t.Errorf("polishing did not improve draft: %d -> %d edits", before, after)
	}
	if after > before/3 {
		t.Errorf("polished draft still has %d of %d edits", after, before)
	}
}

func TestPolishEmptyAlignments(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	draft := genome.Random(rng, 600)
	polished, _ := Polish(draft, nil, 500, 100, 1, DefaultParams())
	if !polished.Equal(draft) {
		t.Error("polishing with no reads should reproduce the draft")
	}
}
