package poa

import (
	"repro/internal/cpufeat"
	"repro/internal/genome"
	"repro/internal/lanes"
	"repro/internal/scratch"
	"repro/internal/seq2"
)

// Lane-batched row sweep for AddSequenceMode.
//
// The scalar DP walks one cell at a time: per cell it chases the
// node's in-edge list, looks each predecessor up through rank[], takes
// an unpredictable branch on the base compare, and stores 9 bytes
// (int32 score + move byte + int32 pred). The lane path restructures
// the same recurrence around three ideas, all borrowed from spoa's
// SIMD engine:
//
//   - The graph is streamed through the CSR snapshot: predecessor DP
//     rows come from one flat slice per node, already resolved to row
//     indices, so the inner loop is loads off a contiguous array.
//   - Sixteen columns advance per step as an int16 lane vector (the
//     wide tier; lanes.I16x16, one AVX2 ymm or NEON q-pair). The
//     match/mismatch choice comes from a dense bit mask over the
//     2-bit packed query (seq2.MatchMaskBits): one 16-bit read yields
//     the group's match bits, one blend turns them into substitution
//     scores — no per-cell base compare, no branch.
//   - Only scores are stored (2 bytes per cell). Moves are recovered
//     during backtracking by re-checking each visited cell's
//     candidates in the scalar enumeration order — the forward pass's
//     running strict-greater maximum keeps the FIRST candidate that
//     reaches the final value, so "first candidate equal to the cell
//     score" recovers exactly the scalar moveT/movePred decisions.
//
// The per-row body lives in row_wide.go (portable) and row_amd64.s /
// row_arm64.s (AVX2 / NEON), dispatched once per alignment on
// cpufeat.Wide16() — so GBENCH_SIMD=off pins the portable twin.
//
// The result is bit-identical to the scalar path: same scores, same
// backtrack tie-breaks, same fused graph, same CellUpdates. The
// scalar path remains in poa.go as the differential reference and as
// the fallback when a window fails the int16 range proof.

// virtualStartRow is the predecessor list of a source node: the DP's
// virtual start row 0. Sharing one slice keeps the candidate loops
// uniform — sources are just rows whose single predecessor is row 0.
var virtualStartRow = []int32{0}

func absScore(x int32) int64 {
	if x < 0 {
		return int64(-x)
	}
	return int64(x)
}

// laneEligible reports whether the int16 sweep represents every
// intermediate DP value exactly. |score| at DP cell (ri, j) is
// bounded by maxAbs*(ri+j) <= maxAbs*(V+n+15) including the padded
// columns, and each candidate adds one more maxAbs before comparing,
// so maxAbs*(V+n+16) must fit int16. Below the bound the saturating
// int16 adds never clamp and equal the scalar int32 arithmetic bit
// for bit; 32000 leaves slack rather than shaving the boundary. The
// wide kernels' prefix-max gap scan additionally requires gap <= 0 so
// its -32768 sentinel fill is a fixed point of the saturating scan
// adds (row_wide.go); a gap bonus is a degenerate configuration, and
// it takes the scalar path like any other ineligible window (huge
// graphs, extreme scores).
func laneEligible(p Params, V, n int) bool {
	maxAbs := absScore(p.Match)
	if m := absScore(p.Mismatch); m > maxAbs {
		maxAbs = m
	}
	if m := absScore(p.Gap); m > maxAbs {
		maxAbs = m
	}
	if maxAbs == 0 {
		maxAbs = 1
	}
	return p.Gap <= 0 && maxAbs*int64(V+n+16) <= 32000
}

// addSequenceLanes is the lane-batched AddSequenceMode body. order is
// the current topological order; the caller has verified eligibility.
func (g *Graph) addSequenceLanes(seq genome.Seq, p Params, mode AlignMode, order []int32) {
	n := len(seq)
	V := len(order)
	c := g.csrSnapshot(order)
	// Row width: column 0 plus n rounded up to whole 16-column groups
	// (lanes.WideWidth). Padding columns compute garbage that never
	// feeds a real column (column j reads only columns j-1 and j, and
	// padding is strictly trailing), and their values stay inside the
	// int16 range proof.
	wpad := 1 + (n+lanes.WideWidth-1)/lanes.WideWidth*lanes.WideWidth
	ngroups := (wpad - 1) / lanes.WideWidth
	g.score16 = scratch.Grow(g.score16, (V+1)*wpad)
	score := g.score16
	// Pack the query and build the four per-base dense match masks,
	// sized so the last group's 16-bit read stays in bounds; words
	// past the query are zeroed (no base matches a padding column).
	g.packBuf = seq2.PackInto(g.packBuf, seq).WordsSlice()
	packed := seq2.FromWords(g.packBuf, n)
	mw := (wpad-2)/64 + 1
	for b := 0; b < 4; b++ {
		g.maskBits[b] = scratch.Grow(g.maskBits[b], mw)
		mask := g.maskBits[b]
		seq2.MatchMaskBits(mask, packed, genome.Base(b))
		for w := seq2.BitsWords(n); w < mw; w++ {
			mask[w] = 0
		}
	}
	match16, mism16, gap16 := int16(p.Match), int16(p.Mismatch), int16(p.Gap)
	// One dispatch decision per alignment, not per row: asm needs both
	// a compiled kernel and a live wide tier (GBENCH_SIMD can lower
	// the ceiling to the portable twin at run time).
	useAsm := poaHaveWideAsm && cpufeat.Wide16()
	// Row 0: virtual start.
	score[0] = 0
	for j := 1; j < wpad; j++ {
		score[j] = int16(j) * gap16
	}
	for r := 0; r < V; r++ {
		row := (r + 1) * wpad
		plist := c.in[c.inOff[r]:c.inOff[r+1]]
		if len(plist) == 0 {
			plist = virtualStartRow
		}
		// Column 0 consumes graph nodes only; it stays scalar. In
		// FitMode leading graph nodes are free.
		if mode == FitMode {
			score[row] = 0
		} else {
			best0 := score[int(plist[0])*wpad] + gap16
			for _, pr := range plist[1:] {
				if s := score[int(pr)*wpad] + gap16; s > best0 {
					best0 = s
				}
			}
			score[row] = best0
		}
		// Resolve predecessor rows to element offsets once; the row
		// kernels then touch nothing but flat arrays.
		g.predOff = scratch.Grow(g.predOff, len(plist))
		predOff := g.predOff[:len(plist)]
		for k, pr := range plist {
			predOff[k] = int64(pr) * int64(wpad)
		}
		mask := g.maskBits[c.bases[r]&3]
		if useAsm {
			poaRowWide(score, predOff, mask, row, ngroups, match16, mism16, gap16)
		} else {
			poaRowPortable(score, predOff, mask, row, ngroups, match16, mism16, gap16)
		}
	}
	g.CellUpdates += uint64(V) * uint64(n)
	// End-cell selection, identical to the scalar scan: global
	// alignment must end at a graph sink, fit alignment anywhere.
	endRow := int32(-1)
	var endScore int16
	for r := 0; r < V; r++ {
		if mode == GlobalMode && c.outDeg[r] != 0 {
			continue
		}
		s := score[(r+1)*wpad+n]
		if endRow < 0 || s > endScore {
			endRow = int32(r + 1)
			endScore = s
		}
	}
	if endRow < 0 {
		endRow = int32(V)
	}
	g.laneBacktrack(seq, order, c, mode, wpad, endRow, p)
	g.fusePath(seq)
}

// laneBacktrack rebuilds the alignment path from the score-only
// sweep: each visited cell re-checks its candidates in the scalar
// enumeration order (diag then up per in-edge, left last) and follows
// the first one whose value equals the cell's score. Because the
// scalar forward pass keeps the first candidate that attains the
// final running maximum, this recovers exactly the scalar path's
// moveT/movePred decisions without the forward pass storing them.
// Cost is O(preds) per visited cell over at most V+n cells — noise
// next to the O(E*n) sweep.
func (g *Graph) laneBacktrack(seq genome.Seq, order []int32, c *csr, mode AlignMode, wpad int, endRow int32, p Params) {
	score := g.score16
	match16, mism16, gap16 := int16(p.Match), int16(p.Mismatch), int16(p.Gap)
	path := g.path[:0]
	r, j := int(endRow), len(seq)
	for {
		if r == 0 {
			// Row 0 is moveLeft back to the moveStart origin.
			for j > 0 {
				path = append(path, aligned{-1, int32(j - 1)})
				j--
			}
			break
		}
		plist := c.in[c.inOff[r-1]:c.inOff[r]]
		if len(plist) == 0 {
			plist = virtualStartRow
		}
		if j == 0 {
			if mode == FitMode {
				break // free leading graph nodes: moveStart
			}
			// Column 0 is always moveUp; recover the predecessor.
			s := score[r*wpad]
			path = append(path, aligned{order[r-1], -1})
			next := int(plist[0])
			for _, pr := range plist {
				if score[int(pr)*wpad]+gap16 == s {
					next = int(pr)
					break
				}
			}
			r = next
			continue
		}
		s := score[r*wpad+j]
		sub := mism16
		if g.maskBits[c.bases[r-1]&3][(j-1)>>6]>>(uint(j-1)&63)&1 != 0 {
			sub = match16
		}
		moved := false
		for _, pr := range plist {
			prow := int(pr) * wpad
			if score[prow+j-1]+sub == s {
				path = append(path, aligned{order[r-1], int32(j - 1)})
				r = int(pr)
				j--
				moved = true
				break
			}
			if score[prow+j]+gap16 == s {
				path = append(path, aligned{order[r-1], -1})
				r = int(pr)
				moved = true
				break
			}
		}
		if !moved {
			// No vertical candidate reaches the score, so the scalar
			// winner was the strictly-greater left move.
			path = append(path, aligned{-1, int32(j - 1)})
			j--
		}
	}
	g.path = path
}
