//go:build amd64 || arm64

package poa

import (
	"math/rand"
	"testing"

	"repro/internal/cpufeat"
	"repro/internal/genome"
)

// TestPoaRowAsmHammer cross-checks the assembly row kernel against
// poaRowPortable on randomized score tables, predecessor sets, match
// masks, and scoring — not just DP-shaped inputs. The kernel contract
// (row_wide.go) promises bit-identity for any table contents as long
// as gap stays in [-4096, 0], so the hammer draws from the full int16
// range and asserts every cell of the written row, padding included.
func TestPoaRowAsmHammer(t *testing.T) {
	if !cpufeat.Wide16() {
		t.Skip("no wide SIMD tier on this host (or GBENCH_SIMD lowered the ceiling)")
	}
	rng := rand.New(rand.NewSource(57))
	for it := 0; it < 2000; it++ {
		ngroups := 1 + rng.Intn(5)
		wpad := 1 + 16*ngroups
		rows := 2 + rng.Intn(6)
		tab := make([]int16, rows*wpad)
		for i := range tab {
			tab[i] = int16(rng.Int())
		}
		tabP := append([]int16(nil), tab...)
		npred := 1 + rng.Intn(3)
		predOff := make([]int64, npred)
		for k := range predOff {
			predOff[k] = int64(rng.Intn(rows-1)) * int64(wpad)
		}
		mask := make([]uint64, (wpad-2)/64+1)
		for i := range mask {
			mask[i] = rng.Uint64()
		}
		match := int16(rng.Int())
		mism := int16(rng.Int())
		gap := int16(-rng.Intn(4097))
		row := (rows - 1) * wpad
		poaRowWide(tab, predOff, mask, row, ngroups, match, mism, gap)
		poaRowPortable(tabP, predOff, mask, row, ngroups, match, mism, gap)
		for i := range tab {
			if tab[i] != tabP[i] {
				t.Fatalf("iter %d: cell %d (row %d col %d) = %d (asm) vs %d (portable); ngroups=%d npred=%d match=%d mism=%d gap=%d",
					it, i, i/wpad, i%wpad, tab[i], tabP[i], ngroups, npred, match, mism, gap)
			}
		}
	}
}

// TestWideSimdOffMatchesAsm runs full consensus builds twice — once
// with the hardware's wide tier, once with GBENCH_SIMD=off pinning
// the portable twin — and demands identical consensi and identical
// DP tables. This is the end-to-end form of the hammer above: the
// dispatch seam (useAsm in addSequenceLanes) must be invisible.
func TestWideSimdOffMatchesAsm(t *testing.T) {
	rng := rand.New(rand.NewSource(58))
	p := DefaultParams()
	for trial := 0; trial < 10; trial++ {
		w := randomWindow(rng)

		ga := New()
		ga.forceLanes = true
		var ca genome.Seq
		for _, seq := range w.Sequences {
			ga.AddSequenceMode(seq, p, GlobalMode)
		}
		ca = ga.Consensus()
		tabA := append([]int16(nil), ga.score16...)

		restore := cpufeat.ForceForTest("off")
		gp := New()
		gp.forceLanes = true
		for _, seq := range w.Sequences {
			gp.AddSequenceMode(seq, p, GlobalMode)
		}
		cp := gp.Consensus()
		restore()

		if !ca.Equal(cp) {
			t.Fatalf("trial %d: consensus differs between asm and GBENCH_SIMD=off portable paths", trial)
		}
		for i := range tabA {
			if tabA[i] != gp.score16[i] {
				t.Fatalf("trial %d: final DP table cell %d differs: %d (asm) vs %d (portable)", trial, i, tabA[i], gp.score16[i])
			}
		}
	}
}
