package poa

import "repro/internal/lanes"

// The 16-wide row kernel for the lane-batched AddSequenceMode sweep.
//
// One call advances one DP row across every 16-column group: expand
// the dense match bits into substitution scores, take the running max
// over the vertical candidates (diagonal + up per predecessor row),
// inject the left-chain carry from column j0-1, resolve the
// horizontal gap chain, and store the finished row segment. The asm
// kernels (row_amd64.s / row_arm64.s, dispatched through row_asm.go)
// implement exactly this function with one ymm register / NEON
// q-register pair per group; poaRowPortable is their bit-level
// reference and the fallback when cpufeat reports no wide tier.
//
// Everything is saturating int16 (lanes.I16x16 Adds / VPADDSW /
// SQADD). Under laneEligible's range proof nothing ever saturates, so
// the kernel equals the scalar int32 reference bit for bit; on
// arbitrary out-of-proof inputs (the differential hammer feeds random
// tables) asm and portable still agree exactly because for gap in
// [-4096, 0] the asm kernels' log-step prefix-max gap scan is
// value-identical to the serial chain here: each scan step's constant
// (gap, 2*gap, 4*gap, 8*gap) is an exact int16 product at that bound,
// saturating adds of same-sign in-range constants compose exactly,
// max distributes over the clamp, and the scan's shifted-in -32768
// sentinel is a fixed point of saturating negative adds, so sentinel
// terms never beat real lanes. laneEligible guarantees far more: its
// gap <= 0 check feeds the sentinel argument, and its magnitude bound
// keeps |gap| under ~1800.

// poaRowPortable computes row rowOff/wpad of the score table.
//   - score: the full int16 DP table.
//   - predOff: element offsets of each predecessor row's start
//     (plist[k] * wpad); always at least one entry.
//   - mask: dense match-bit words for this row's base; bit j-1 set
//     means query column j matches. Group gi's 16 bits are 16-bit
//     aligned at bit offset 16*gi.
//   - rowOff: element offset of this row's start; score[rowOff]
//     (column 0) is already final and seeds the left chain.
//   - ngroups: number of 16-column groups ((wpad-1)/16).
func poaRowPortable(score []int16, predOff []int64, mask []uint64, rowOff, ngroups int, match, mism, gap int16) {
	for gi := 0; gi < ngroups; gi++ {
		j0 := 1 + gi*lanes.WideWidth
		mb := uint16(mask[gi>>2] >> (uint(gi&3) * 16))
		subv := lanes.Pick16(mb, match, mism)
		prow := int(predOff[0])
		best := lanes.Load16I16(score, prow+j0-1).Adds(subv)
		best = best.Max(lanes.Load16I16(score, prow+j0).AddsS(gap))
		for _, po := range predOff[1:] {
			prow = int(po)
			best = best.Max(lanes.Load16I16(score, prow+j0-1).Adds(subv))
			best = best.Max(lanes.Load16I16(score, prow+j0).AddsS(gap))
		}
		// Horizontal left chain: final[j] = max(vert[j], final[j-1]+gap),
		// seeded by the finished column j0-1. Serial by definition, so it
		// runs scalar across the group, unrolled over the lane struct
		// fields; vertical candidates win ties exactly as in the scalar
		// path (left replaces only on strict greater).
		f := score[rowOff+j0-1]
		if s := satAdd16(f, gap); s > best.Lo.Lo.A {
			best.Lo.Lo.A = s
		}
		if s := satAdd16(best.Lo.Lo.A, gap); s > best.Lo.Lo.B {
			best.Lo.Lo.B = s
		}
		if s := satAdd16(best.Lo.Lo.B, gap); s > best.Lo.Lo.C {
			best.Lo.Lo.C = s
		}
		if s := satAdd16(best.Lo.Lo.C, gap); s > best.Lo.Lo.D {
			best.Lo.Lo.D = s
		}
		if s := satAdd16(best.Lo.Lo.D, gap); s > best.Lo.Hi.A {
			best.Lo.Hi.A = s
		}
		if s := satAdd16(best.Lo.Hi.A, gap); s > best.Lo.Hi.B {
			best.Lo.Hi.B = s
		}
		if s := satAdd16(best.Lo.Hi.B, gap); s > best.Lo.Hi.C {
			best.Lo.Hi.C = s
		}
		if s := satAdd16(best.Lo.Hi.C, gap); s > best.Lo.Hi.D {
			best.Lo.Hi.D = s
		}
		if s := satAdd16(best.Lo.Hi.D, gap); s > best.Hi.Lo.A {
			best.Hi.Lo.A = s
		}
		if s := satAdd16(best.Hi.Lo.A, gap); s > best.Hi.Lo.B {
			best.Hi.Lo.B = s
		}
		if s := satAdd16(best.Hi.Lo.B, gap); s > best.Hi.Lo.C {
			best.Hi.Lo.C = s
		}
		if s := satAdd16(best.Hi.Lo.C, gap); s > best.Hi.Lo.D {
			best.Hi.Lo.D = s
		}
		if s := satAdd16(best.Hi.Lo.D, gap); s > best.Hi.Hi.A {
			best.Hi.Hi.A = s
		}
		if s := satAdd16(best.Hi.Hi.A, gap); s > best.Hi.Hi.B {
			best.Hi.Hi.B = s
		}
		if s := satAdd16(best.Hi.Hi.B, gap); s > best.Hi.Hi.C {
			best.Hi.Hi.C = s
		}
		if s := satAdd16(best.Hi.Hi.C, gap); s > best.Hi.Hi.D {
			best.Hi.Hi.D = s
		}
		lanes.Store16I16(score, rowOff+j0, best)
	}
}

// satAdd16 is the scalar twin of VPADDSW / SQADD: exact sum clamped
// to the int16 range.
func satAdd16(a, b int16) int16 {
	s := int32(a) + int32(b)
	if s > 32767 {
		return 32767
	}
	if s < -32768 {
		return -32768
	}
	return int16(s)
}
