package poa

import (
	"math/rand"
	"testing"

	"repro/internal/genome"
)

func randomWindow(rng *rand.Rand) *Window {
	base := genome.Random(rng, 50+rng.Intn(150))
	w := &Window{}
	for s := 0; s < 3+rng.Intn(5); s++ {
		seq := base.Clone()
		for k := 0; k < len(seq)/15+1; k++ {
			seq[rng.Intn(len(seq))] = genome.Base(rng.Intn(4))
		}
		w.Sequences = append(w.Sequences, seq)
	}
	return w
}

// A Reset graph reused across windows must produce exactly the
// consensus a fresh graph produces: pooled == unpooled.
func TestConsensusIntoDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	g := New()
	for trial := 0; trial < 40; trial++ {
		w := randomWindow(rng)
		wantCons, wantCells := ConsensusOf(w, DefaultParams())
		gotCons, gotCells := ConsensusInto(w, DefaultParams(), g)
		if !gotCons.Equal(wantCons) {
			t.Fatalf("trial %d: consensus differs:\n got %v\nwant %v", trial, gotCons, wantCons)
		}
		if gotCells != wantCells {
			t.Fatalf("trial %d: cells %d, want %d", trial, gotCells, wantCells)
		}
	}
}

// Reset must leave no stale state behind: interleaving big and small
// windows stresses the truncated node storage and DP buffers.
func TestResetReuseAcrossSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	g := New()
	for trial := 0; trial < 10; trial++ {
		big := randomWindow(rng)
		small := &Window{Sequences: []genome.Seq{genome.Random(rng, 10)}}
		for _, w := range []*Window{big, small, big} {
			want, _ := ConsensusOf(w, DefaultParams())
			got, _ := ConsensusInto(w, DefaultParams(), g)
			if !got.Equal(want) {
				t.Fatalf("trial %d: consensus differs after size change", trial)
			}
		}
	}
}

// Steady-state pooled windows should allocate far less than fresh
// graphs; the consensus result itself is the only retained slice.
func TestConsensusIntoAllocsBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	w := randomWindow(rng)
	g := New()
	ConsensusInto(w, DefaultParams(), g) // warm
	pooled := testing.AllocsPerRun(20, func() {
		ConsensusInto(w, DefaultParams(), g)
	})
	fresh := testing.AllocsPerRun(20, func() {
		ConsensusOf(w, DefaultParams())
	})
	// One allocation for the returned consensus; allow a little slack
	// for map-free incidentals but stay far under the fresh-graph cost.
	if pooled > 4 {
		t.Fatalf("pooled AllocsPerRun = %v, want <= 4 (fresh = %v)", pooled, fresh)
	}
	if pooled*10 > fresh {
		t.Fatalf("pooled (%v) not clearly below fresh (%v)", pooled, fresh)
	}
}

// Fresh-graph versus Reset-graph window consensus: the bench
// harness's poa before/after pair.
func BenchmarkConsensus(b *testing.B) {
	rng := rand.New(rand.NewSource(44))
	windows := make([]*Window, 8)
	for i := range windows {
		windows[i] = randomWindow(rng)
	}
	p := DefaultParams()
	b.Run("fresh", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ConsensusOf(windows[i%len(windows)], p)
		}
	})
	b.Run("pooled", func(b *testing.B) {
		b.ReportAllocs()
		g := New()
		for i := 0; i < b.N; i++ {
			ConsensusInto(windows[i%len(windows)], p, g)
		}
	})
}
