// AVX2 16-wide row kernel for the POA lane sweep. One ymm register
// holds one 16-column group of saturating int16 DP cells; see
// row_wide.go for the kernel contract and the proof sketch that the
// log-step prefix-max gap scan below is bit-identical to the portable
// serial chain for gap <= 0.

#include "textflag.h"

// poaBitsTab: words [1, 2, 4, ..., 0x8000]. Broadcasting a group's
// 16 match bits and comparing (word AND tab) == tab turns bit l into
// an all-ones word in lane l.
DATA poaBitsTab<>+0x00(SB)/8, $0x0008000400020001
DATA poaBitsTab<>+0x08(SB)/8, $0x0080004000200010
DATA poaBitsTab<>+0x10(SB)/8, $0x0800040002000100
DATA poaBitsTab<>+0x18(SB)/8, $0x8000400020001000
GLOBL poaBitsTab<>(SB), RODATA|NOPTR, $32

// poaLane0: byte mask selecting word lane 0 only (VPBLENDVB control).
DATA poaLane0<>+0x00(SB)/8, $0x000000000000FFFF
DATA poaLane0<>+0x08(SB)/8, $0x0000000000000000
DATA poaLane0<>+0x10(SB)/8, $0x0000000000000000
DATA poaLane0<>+0x18(SB)/8, $0x0000000000000000
GLOBL poaLane0<>(SB), RODATA|NOPTR, $32

// Register plan:
//   Y1 match splat    Y2 mism splat   Y3 gap      Y4 2*gap
//   Y5 4*gap          Y6 8*gap        Y7 -32768   Y8 bits table
//   Y9 lane-0 mask    Y10 subv        Y11 best    Y12, Y13 temps
// The gap multiples are built with VPADDSW; |8*gap| is far inside
// int16 under the eligibility bound, so they are exact.

// func poaRowAsm(a *poaRowArgs)
TEXT ·poaRowAsm(SB), NOSPLIT, $0-8
	MOVQ a+0(FP), AX
	MOVQ 0(AX), SI              // score base
	MOVQ 8(AX), DI              // predOff
	MOVQ 16(AX), R8             // mask words
	MOVQ 24(AX), R9             // rowOff (elements)
	MOVQ 32(AX), R10            // npred
	MOVQ 40(AX), R11            // ngroups
	VPBROADCASTW 48(AX), Y1     // match
	VPBROADCASTW 50(AX), Y2     // mism
	VPBROADCASTW 52(AX), Y3     // gap
	VPADDSW Y3, Y3, Y4          // 2*gap
	VPADDSW Y4, Y4, Y5          // 4*gap
	VPADDSW Y5, Y5, Y6          // 8*gap
	VPCMPEQD Y7, Y7, Y7
	VPSLLW $15, Y7, Y7          // -32768 sentinel
	VMOVDQU poaBitsTab<>(SB), Y8
	VMOVDQU poaLane0<>(SB), Y9
	LEAQ (SI)(R9*2), R9         // &score[rowOff]
	XORQ R12, R12               // gi

groups:
	// subv: group gi's 16 match bits live at byte offset 2*gi (they
	// are 16-bit aligned because groups start at j0-1 = 16*gi).
	VPBROADCASTW (R8)(R12*2), Y10
	VPAND Y8, Y10, Y10
	VPCMPEQW Y8, Y10, Y10
	VPBLENDVB Y10, Y1, Y2, Y10  // bit set -> match, else mism

	// Vertical candidates: running max over diag+up per predecessor.
	VMOVDQA Y7, Y11
	MOVQ R12, R15
	SHLQ $5, R15                // 32*gi: byte offset of column j0-1
	MOVQ DI, R13
	MOVQ R10, R14
predloop:
	MOVQ (R13), BX              // predecessor row element offset
	LEAQ (SI)(BX*2), BX
	ADDQ R15, BX                // &score[prow + j0-1]
	VMOVDQU (BX), Y12
	VPADDSW Y10, Y12, Y12       // diag + sub
	VPMAXSW Y12, Y11, Y11
	VMOVDQU 2(BX), Y12
	VPADDSW Y3, Y12, Y12        // up + gap
	VPMAXSW Y12, Y11, Y11
	ADDQ $8, R13
	DECQ R14
	JNZ predloop

	// Left-chain carry from the finished column j0-1: lane 0 gets
	// sat(carry+gap), the rest the -32768 sentinel (max no-ops).
	VPBROADCASTW (R9)(R15*1), Y12
	VPADDSW Y3, Y12, Y12
	VPBLENDVB Y9, Y12, Y7, Y12
	VPMAXSW Y12, Y11, Y11

	// Log-step prefix-max gap scan: after shifts by 1, 2, 4, 8 lanes
	// (sentinel-filled) each lane j holds max over k<=j of
	// vert[k] + (j-k)*gap — the serial left chain.
	VPERM2I128 $0x02, Y7, Y11, Y12 // [sentinel, best.lo]
	VPALIGNR $14, Y12, Y11, Y13    // shift up 1 word
	VPADDSW Y3, Y13, Y13
	VPMAXSW Y13, Y11, Y11
	VPERM2I128 $0x02, Y7, Y11, Y12
	VPALIGNR $12, Y12, Y11, Y13    // shift up 2 words
	VPADDSW Y4, Y13, Y13
	VPMAXSW Y13, Y11, Y11
	VPERM2I128 $0x02, Y7, Y11, Y12
	VPALIGNR $8, Y12, Y11, Y13     // shift up 4 words
	VPADDSW Y5, Y13, Y13
	VPMAXSW Y13, Y11, Y11
	VPERM2I128 $0x02, Y7, Y11, Y12 // shift up 8 words is the permute itself
	VPADDSW Y6, Y12, Y12
	VPMAXSW Y12, Y11, Y11

	VMOVDQU Y11, 2(R9)(R15*1)      // store columns j0..j0+15
	INCQ R12
	CMPQ R12, R11
	JLT groups

	VZEROUPPER
	RET
