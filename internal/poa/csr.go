package poa

import "repro/internal/scratch"

// csr is a structure-of-arrays snapshot of the graph in topological
// rank order — the layout the DP row sweep and the consensus pass
// stream instead of chasing node/edge pointers:
//
//	rank r (DP row r+1):  bases[r], preds in[inOff[r]:inOff[r+1]]
//
// In-edge entries are stored as DP ROW indices (predecessor rank + 1,
// row 0 being the virtual start), in the same order as the node's
// `in` slice — candidate enumeration order is part of the scalar
// path's tie-break contract, so the snapshot must preserve it.
// Weights ride along for the consensus heaviest-bundle pass.
//
// The snapshot is rebuilt lazily: any mutation (addNode, addEdge —
// including a weight bump on an existing edge — or Reset) marks it
// stale, and the next csrSnapshot call after a topo order rebuilds it
// into grow-only storage. Steady state costs one O(V+E) sweep per
// AddSequence, the same order as the topo sort that precedes it.
type csr struct {
	inOff  []int32 // per-rank in-edge offsets, len V+1
	in     []int32 // flat in-edge DP-row indices (rank+1), len E
	inW    []int32 // in-edge weights, aligned with in
	bases  []byte  // node bases by rank, contiguous
	outDeg []int32 // out-degrees by rank (sink test for end selection)
}

// csrSnapshot returns the snapshot for the current graph, rebuilding
// it if stale. order must be g.topoOrder() (the caller has always
// just computed it).
func (g *Graph) csrSnapshot(order []int32) *csr {
	if g.csrOK {
		return &g.csr
	}
	V := len(order)
	g.rank = scratch.Grow(g.rank, len(g.nodes))
	rank := g.rank
	for r, v := range order {
		rank[v] = int32(r)
	}
	c := &g.csr
	c.inOff = scratch.Grow(c.inOff, V+1)
	c.bases = scratch.Grow(c.bases, V)
	c.outDeg = scratch.Grow(c.outDeg, V)
	ne := 0
	for r, v := range order {
		nd := &g.nodes[v]
		c.inOff[r] = int32(ne)
		ne += len(nd.in)
		c.bases[r] = byte(nd.base)
		c.outDeg[r] = int32(len(nd.out))
	}
	c.inOff[V] = int32(ne)
	c.in = scratch.Grow(c.in, ne)
	c.inW = scratch.Grow(c.inW, ne)
	k := 0
	for _, v := range order {
		for _, e := range g.nodes[v].in {
			c.in[k] = rank[e.to] + 1
			c.inW[k] = e.weight
			k++
		}
	}
	g.csrOK = true
	return c
}
