//go:build amd64 || arm64

package poa

// Assembly fast paths for the 16-wide row sweep: AVX2 on amd64
// (row_amd64.s), NEON on arm64 (row_arm64.s). Both replay
// poaRowPortable's arithmetic with one 16-lane saturating-int16
// vector per column group — same candidate order, same saturation —
// so their output is bit-identical to the portable body on every
// input the kernel contract admits (gap <= 0; see row_wide.go for
// why the asm prefix-max scan equals the portable serial chain even
// off the range proof). TestPoaRowAsmHammer asserts exactly that.
//
// Unlike phmm's SSE2/baseline-NEON kernels, AVX2 is not in the amd64
// baseline: callers must gate on cpufeat.Wide16(), which folds in
// both the CPUID/XCR0 probe and the GBENCH_SIMD override. arm64's
// ASIMD is baseline, so Wide16 is always true there unless
// overridden.

// poaHaveWideAsm reports whether this architecture has an assembly
// row kernel compiled in (it still needs cpufeat.Wide16() at run
// time to be dispatchable).
const poaHaveWideAsm = true

// poaRowArgs is the flattened argument block for poaRowAsm. Field
// offsets are fixed by the assembly — keep layout in sync with
// row_amd64.s and row_arm64.s.
type poaRowArgs struct {
	score   *int16  // +0:  DP table base
	predOff *int64  // +8:  predecessor row element offsets, npred entries
	mask    *uint64 // +16: dense match-bit words for this row's base
	rowOff  int64   // +24: element offset of this row's start
	npred   int64   // +32: predecessor count, >= 1
	ngroups int64   // +40: 16-column group count
	match   int16   // +48
	mism    int16   // +50
	gap     int16   // +52
	_       [6]byte // pad to 8-byte multiple
}

//go:noescape
func poaRowAsm(a *poaRowArgs)

// poaRowWide advances one DP row through the assembly kernel. Same
// contract as poaRowPortable.
func poaRowWide(score []int16, predOff []int64, mask []uint64, rowOff, ngroups int, match, mism, gap int16) {
	a := poaRowArgs{
		score: &score[0], predOff: &predOff[0], mask: &mask[0],
		rowOff: int64(rowOff), npred: int64(len(predOff)), ngroups: int64(ngroups),
		match: match, mism: mism, gap: gap,
	}
	poaRowAsm(&a)
}
