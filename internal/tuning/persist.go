package tuning

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// Probe persistence: microprobe results are stable for a given host
// class, so re-running them every process start (several ms per probe,
// worse under contention) buys nothing. Resolved probe values are
// written to a small JSON cache keyed by the host profile
// (os/arch/numcpu); later processes on the same host class read the
// cached value instead of probing. Only PROBE results persist —
// explicit Sets, env overrides, and GBENCH_TUNE=off never touch the
// cache, so pinned test runs stay hermetic and cannot poison it.
//
// Controls:
//
//   - GBENCH_TUNE_NOCACHE=1   skip the cache entirely (probe every start)
//   - GBENCH_TUNE_CACHE_DIR   override the cache directory (tests use
//     this; default os.UserCacheDir()/gbench)
//
// A corrupted or unreadable cache file is treated as absent and
// overwritten wholesale on the next store, so damage self-heals.
// All cache I/O is best-effort: failures fall back to probing.

// cacheSchema versions the on-disk format; bump to invalidate.
const cacheSchema = 1

// cacheFile is the on-disk format: one file per host class.
type cacheFile struct {
	Schema int            `json:"schema"`
	Host   string         `json:"host"`
	Values map[string]int `json:"values"`
}

var cacheMu sync.Mutex

// cachePath returns the cache file path for this host class, or ""
// when caching is unavailable/disabled. Test binaries never touch the
// user's real cache (probe-once assertions would see stale hits across
// runs); they opt in by setting GBENCH_TUNE_CACHE_DIR to a temp dir.
func cachePath() string {
	if os.Getenv("GBENCH_TUNE_NOCACHE") != "" {
		return ""
	}
	dir := os.Getenv("GBENCH_TUNE_CACHE_DIR")
	if dir == "" {
		if testing.Testing() {
			return ""
		}
		base, err := os.UserCacheDir()
		if err != nil {
			return ""
		}
		dir = filepath.Join(base, "gbench")
	}
	host := strings.ReplaceAll(Host().Key(), "/", "_")
	return filepath.Join(dir, "tune-"+host+".json")
}

// loadCache reads the host-class cache, returning an empty (never nil
// on the Values map) cacheFile when missing, corrupted, or mismatched.
func loadCache(path string) cacheFile {
	empty := cacheFile{Schema: cacheSchema, Host: Host().Key(), Values: map[string]int{}}
	data, err := os.ReadFile(path)
	if err != nil {
		return empty
	}
	var cf cacheFile
	if json.Unmarshal(data, &cf) != nil || cf.Schema != cacheSchema ||
		cf.Host != Host().Key() || cf.Values == nil {
		return empty
	}
	return cf
}

// cacheLookup returns the persisted probe value for name, if present.
func cacheLookup(name string) (int, bool) {
	path := cachePath()
	if path == "" {
		return 0, false
	}
	cacheMu.Lock()
	defer cacheMu.Unlock()
	v, ok := loadCache(path).Values[name]
	return v, ok
}

// cacheStore persists a freshly probed value, read-modify-writing the
// host-class file atomically (temp file + rename) so concurrent
// processes never observe a torn file. Best-effort: any failure leaves
// the cache as it was.
func cacheStore(name string, v int) {
	path := cachePath()
	if path == "" {
		return
	}
	cacheMu.Lock()
	defer cacheMu.Unlock()
	cf := loadCache(path)
	cf.Values[name] = v
	data, err := json.MarshalIndent(cf, "", "  ")
	if err != nil {
		return
	}
	if os.MkdirAll(filepath.Dir(path), 0o755) != nil {
		return
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tune-*")
	if err != nil {
		return
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return
	}
	if tmp.Close() != nil {
		os.Remove(tmp.Name())
		return
	}
	if os.Rename(tmp.Name(), path) != nil {
		os.Remove(tmp.Name())
	}
}
