package tuning

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// newCachedInt builds an unregistered tunable whose probe counts its
// invocations. It bypasses NewInt so tests don't pollute the registry.
func newCachedInt(name string, probeCalls *int, result int) *Int {
	return &Int{name: name, def: 1, min: 1, max: 1 << 20, probe: func() int {
		*probeCalls++
		return result
	}}
}

func TestProbeCacheRoundtrip(t *testing.T) {
	dir := t.TempDir()
	t.Setenv("GBENCH_TUNE_CACHE_DIR", dir)
	t.Setenv("GBENCH_TUNE_NOCACHE", "")
	t.Setenv("GBENCH_TUNE", "")

	calls := 0
	a := newCachedInt("test.roundtrip", &calls, 42)
	if v := a.Get(); v != 42 {
		t.Fatalf("first Get = %d, want probed 42", v)
	}
	if calls != 1 {
		t.Fatalf("probe ran %d times, want 1", calls)
	}

	// A second tunable with the same name (a fresh process, in effect)
	// must read the cache instead of probing.
	b := newCachedInt("test.roundtrip", &calls, 99)
	if v := b.Get(); v != 42 {
		t.Fatalf("cached Get = %d, want persisted 42", v)
	}
	if calls != 1 {
		t.Fatalf("probe ran %d times after cached Get, want 1", calls)
	}

	// The file itself must be the documented schema, keyed by host.
	path := cachePath()
	if !strings.HasPrefix(filepath.Base(path), "tune-") {
		t.Fatalf("unexpected cache filename %q", path)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var cf cacheFile
	if err := json.Unmarshal(data, &cf); err != nil {
		t.Fatal(err)
	}
	if cf.Schema != cacheSchema || cf.Host != Host().Key() || cf.Values["test.roundtrip"] != 42 {
		t.Fatalf("cache file contents: %+v", cf)
	}
}

func TestProbeCacheCorruptedFileRecovers(t *testing.T) {
	dir := t.TempDir()
	t.Setenv("GBENCH_TUNE_CACHE_DIR", dir)
	t.Setenv("GBENCH_TUNE_NOCACHE", "")
	t.Setenv("GBENCH_TUNE", "")

	path := cachePath()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}

	calls := 0
	a := newCachedInt("test.corrupt", &calls, 7)
	if v := a.Get(); v != 7 {
		t.Fatalf("Get with corrupted cache = %d, want probed 7", v)
	}
	if calls != 1 {
		t.Fatalf("probe ran %d times, want 1", calls)
	}

	// The store must have repaired the file: a re-read finds the value.
	b := newCachedInt("test.corrupt", &calls, 8)
	if v := b.Get(); v != 7 {
		t.Fatalf("Get after repair = %d, want 7", v)
	}
	if calls != 1 {
		t.Fatalf("probe ran %d times after repair, want 1", calls)
	}
}

func TestProbeCacheNocacheOptOut(t *testing.T) {
	dir := t.TempDir()
	t.Setenv("GBENCH_TUNE_CACHE_DIR", dir)
	t.Setenv("GBENCH_TUNE_NOCACHE", "1")
	t.Setenv("GBENCH_TUNE", "")

	calls := 0
	a := newCachedInt("test.nocache", &calls, 5)
	a.Get()
	b := newCachedInt("test.nocache", &calls, 5)
	b.Get()
	if calls != 2 {
		t.Fatalf("probe ran %d times under NOCACHE, want 2", calls)
	}
	if entries, err := os.ReadDir(dir); err != nil || len(entries) != 0 {
		t.Fatalf("NOCACHE wrote cache files: %v (err %v)", entries, err)
	}
}

func TestProbeCacheHostMismatchIgnored(t *testing.T) {
	dir := t.TempDir()
	t.Setenv("GBENCH_TUNE_CACHE_DIR", dir)
	t.Setenv("GBENCH_TUNE_NOCACHE", "")
	t.Setenv("GBENCH_TUNE", "")

	// A cache written by a different host class must be ignored (and
	// rewritten for this host).
	path := cachePath()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	wrong := cacheFile{Schema: cacheSchema, Host: "plan9/mips/c512", Values: map[string]int{"test.hostmix": 1000}}
	data, _ := json.Marshal(wrong)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	calls := 0
	a := newCachedInt("test.hostmix", &calls, 3)
	if v := a.Get(); v != 3 {
		t.Fatalf("Get = %d, want probed 3 (foreign cache must not apply)", v)
	}
	if calls != 1 {
		t.Fatalf("probe ran %d times, want 1", calls)
	}
}

func TestEnvOverrideSkipsCache(t *testing.T) {
	dir := t.TempDir()
	t.Setenv("GBENCH_TUNE_CACHE_DIR", dir)
	t.Setenv("GBENCH_TUNE_NOCACHE", "")
	t.Setenv("GBENCH_TUNE", "")
	t.Setenv("GBENCH_TUNE_TEST_ENVPIN", "12")

	calls := 0
	a := newCachedInt("test.envpin", &calls, 77)
	if v := a.Get(); v != 12 {
		t.Fatalf("Get = %d, want env-pinned 12", v)
	}
	if calls != 0 {
		t.Fatal("probe must not run under an env override")
	}
	// Env-pinned values must never persist.
	if entries, err := os.ReadDir(dir); err != nil || len(entries) != 0 {
		t.Fatalf("env override wrote cache files: %v (err %v)", entries, err)
	}
}
