package tuning

import (
	"os"
	"sync"
	"testing"
)

func TestProbeRunsOnceAndClamps(t *testing.T) {
	calls := 0
	tn := NewInt("test.once", 10, 0, 20, func() int { calls++; return 99 })
	if got := tn.Get(); got != 20 {
		t.Fatalf("Get = %d, want probe result clamped to 20", got)
	}
	for i := 0; i < 5; i++ {
		tn.Get()
	}
	if calls != 1 {
		t.Fatalf("probe ran %d times, want 1", calls)
	}
}

func TestNilProbeUsesDefault(t *testing.T) {
	tn := NewInt("test.default", 7, 0, 20, nil)
	if got := tn.Get(); got != 7 {
		t.Fatalf("Get = %d, want default 7", got)
	}
}

func TestSetOverridesAndRestores(t *testing.T) {
	calls := 0
	tn := NewInt("test.set", 3, 0, 100, func() int { calls++; return 50 })
	restore := tn.Set(8)
	if got := tn.Get(); got != 8 || calls != 0 {
		t.Fatalf("Get = %d (probe calls %d), want pinned 8 with no probe", got, calls)
	}
	restore()
	if got := tn.Get(); got != 50 || calls != 1 {
		t.Fatalf("after restore Get = %d (probe calls %d), want probed 50", got, calls)
	}
	// Restoring an already-resolved state keeps the probed value.
	restore2 := tn.Set(1)
	restore2()
	if got := tn.Get(); got != 50 || calls != 1 {
		t.Fatalf("second restore Get = %d (probe calls %d), want cached 50", got, calls)
	}
}

func TestEnvOverride(t *testing.T) {
	os.Setenv("GBENCH_TUNE_TEST_ENV_VALUE", "13")
	defer os.Unsetenv("GBENCH_TUNE_TEST_ENV_VALUE")
	tn := NewInt("test.env_value", 3, 0, 100, func() int { return 50 })
	if got := tn.Get(); got != 13 {
		t.Fatalf("Get = %d, want env override 13", got)
	}
}

func TestTuneOffFreezesDefaults(t *testing.T) {
	os.Setenv("GBENCH_TUNE", "off")
	defer os.Unsetenv("GBENCH_TUNE")
	calls := 0
	tn := NewInt("test.off", 4, 0, 100, func() int { calls++; return 50 })
	if got := tn.Get(); got != 4 || calls != 0 {
		t.Fatalf("Get = %d (probe calls %d), want default 4 with probe skipped", got, calls)
	}
}

func TestGetConcurrent(t *testing.T) {
	calls := 0
	tn := NewInt("test.concurrent", 0, 0, 100, func() int { calls++; return 42 })
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if got := tn.Get(); got != 42 {
				t.Errorf("Get = %d, want 42", got)
			}
		}()
	}
	wg.Wait()
	if calls != 1 {
		t.Fatalf("probe ran %d times under concurrency, want 1", calls)
	}
}

func TestResolveAllIncludesRegistered(t *testing.T) {
	tn := NewInt("test.resolveall", 6, 0, 100, nil)
	found := false
	for _, r := range ResolveAll() {
		if r.Name == "test.resolveall" {
			found = true
			if r.Value != 6 {
				t.Fatalf("resolved value = %d, want 6", r.Value)
			}
		}
	}
	if !found {
		t.Fatal("registered tunable missing from ResolveAll")
	}
	_ = tn
}

func TestHostKey(t *testing.T) {
	p := Profile{OS: "linux", Arch: "amd64", NumCPU: 4}
	if p.Key() != "linux/amd64/c4" {
		t.Fatalf("Key = %q", p.Key())
	}
	if Host().NumCPU < 1 {
		t.Fatalf("Host().NumCPU = %d", Host().NumCPU)
	}
}

func TestBestNsPositive(t *testing.T) {
	x := 0
	ns := BestNs(3, 100, func() { x++ })
	if ns < 0 {
		t.Fatalf("BestNs = %v, want >= 0", ns)
	}
	if x != 300 {
		t.Fatalf("f ran %d times, want 300", x)
	}
}
