// Package tuning turns hardcoded performance heuristics into
// measured-at-startup decisions. A kernel that needs a cutover
// constant (the pileup packed-counting run-length threshold, the poa
// lanes-vs-scalar work floor) declares an Int with a default and a
// microprobe; the first Get runs the probe once on the live host and
// caches the answer for the process. The committed BENCH_HISTORY
// trajectory motivated this: the pileup/count speedup drifted across
// PRs partly because a cutover tuned on one host class was wrong for
// another (see docs/PERFORMANCE.md, "Bench history and trend gating").
//
// Resolution order for a tunable named "pileup.word_run_min":
//
//  1. an explicit Set (tests pin dispatch deterministically),
//  2. the GBENCH_TUNE_PILEUP_WORD_RUN_MIN environment variable,
//  3. GBENCH_TUNE=off, which freezes every tunable at its default
//     (hermetic runs, probe-free CI steps),
//  4. the on-disk probe cache, keyed by host class (persist.go;
//     GBENCH_TUNE_NOCACHE=1 skips it),
//  5. the probe, run once, clamped to [Min, Max], and persisted.
//
// Probes must not call their own Get (the sync.Once would deadlock);
// they time forced code paths directly with BestNs.
package tuning

import (
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Profile identifies the host class a measured value applies to.
// Records in BENCH_HISTORY carry the same triple so trend comparisons
// stay within one host class.
type Profile struct {
	OS     string
	Arch   string
	NumCPU int
}

// Host returns the running host's profile.
func Host() Profile {
	return Profile{OS: runtime.GOOS, Arch: runtime.GOARCH, NumCPU: runtime.NumCPU()}
}

// Key renders the profile as a compact stable string, e.g.
// "linux/amd64/c1".
func (p Profile) Key() string {
	return fmt.Sprintf("%s/%s/c%d", p.OS, p.Arch, p.NumCPU)
}

// Int is one lazily-probed integer tunable.
type Int struct {
	name     string
	def      int
	min, max int
	probe    func() int

	mu       sync.Mutex
	resolved bool
	v        int
}

var (
	registryMu sync.Mutex
	registry   []*Int
)

// NewInt declares a tunable and registers it for ResolveAll. The probe
// may be nil (the default is used). Values from every source are
// clamped to [min, max].
func NewInt(name string, def, min, max int, probe func() int) *Int {
	if min > max {
		panic("tuning: min > max for " + name)
	}
	t := &Int{name: name, def: clamp(def, min, max), min: min, max: max, probe: probe}
	registryMu.Lock()
	registry = append(registry, t)
	registryMu.Unlock()
	return t
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Name returns the tunable's registered name.
func (t *Int) Name() string { return t.name }

// Get returns the resolved value, running the probe on first use.
func (t *Int) Get() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.resolved {
		t.v = t.resolveLocked()
		t.resolved = true
	}
	return t.v
}

func (t *Int) resolveLocked() int {
	if s := os.Getenv(envKey(t.name)); s != "" {
		if n, err := strconv.Atoi(s); err == nil {
			return clamp(n, t.min, t.max)
		}
	}
	if strings.EqualFold(os.Getenv("GBENCH_TUNE"), "off") || t.probe == nil {
		return t.def
	}
	if v, ok := cacheLookup(t.name); ok {
		return clamp(v, t.min, t.max)
	}
	v := clamp(t.probe(), t.min, t.max)
	cacheStore(t.name, v)
	return v
}

// Set pins the value (clamped), overriding any probe result, and
// returns a restore function that reinstates the previous state —
// the test-hook idiom: defer tunable.Set(0)().
func (t *Int) Set(v int) (restore func()) {
	t.mu.Lock()
	defer t.mu.Unlock()
	prevResolved, prev := t.resolved, t.v
	t.resolved, t.v = true, clamp(v, t.min, t.max)
	return func() {
		t.mu.Lock()
		t.resolved, t.v = prevResolved, prev
		t.mu.Unlock()
	}
}

// envKey maps "pileup.word_run_min" to GBENCH_TUNE_PILEUP_WORD_RUN_MIN.
func envKey(name string) string {
	s := strings.NewReplacer(".", "_", "-", "_", "/", "_").Replace(name)
	return "GBENCH_TUNE_" + strings.ToUpper(s)
}

// ResolveAll forces every registered tunable to resolve now. Long-lived
// entry points (gbench, gbench-bench) call it at startup so probes run
// before any timed or latency-sensitive work; without it the first
// kernel call pays the probe inline.
func ResolveAll() []Resolved {
	registryMu.Lock()
	ts := append([]*Int(nil), registry...)
	registryMu.Unlock()
	out := make([]Resolved, 0, len(ts))
	for _, t := range ts {
		out = append(out, Resolved{Name: t.name, Value: t.Get()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Resolved is one tunable's settled value, for logging.
type Resolved struct {
	Name  string
	Value int
}

// BestNs times f (one unit of work per call) and returns the fastest
// observed per-call cost in nanoseconds: reps timed batches of iters
// calls each, minimum batch taken. Minimum-of-batches is the standard
// noise-robust estimator for microprobes — interference only ever adds
// time. Callers size iters so one batch stays in the microsecond range
// and the whole probe under a millisecond or two.
func BestNs(reps, iters int, f func()) float64 {
	if reps < 1 {
		reps = 1
	}
	if iters < 1 {
		iters = 1
	}
	best := time.Duration(1<<63 - 1)
	for r := 0; r < reps; r++ {
		start := time.Now()
		for i := 0; i < iters; i++ {
			f()
		}
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return float64(best.Nanoseconds()) / float64(iters)
}
