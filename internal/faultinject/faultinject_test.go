package faultinject

import (
	"bytes"
	"context"
	"errors"
	"io"
	"strings"
	"testing"
	"time"
)

func TestParseGrammar(t *testing.T) {
	p, err := Parse("panic:poa:0.5,truncate:fasta,delay:chain:200ms", 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Faults) != 3 {
		t.Fatalf("got %d faults", len(p.Faults))
	}
	if f := p.Faults[0]; f.Kind != KindPanic || f.Site != "poa" || f.Prob != 0.5 {
		t.Errorf("clause 0 = %+v", f)
	}
	if f := p.Faults[1]; f.Kind != KindTruncate || f.Site != "fasta" || f.Bytes != 1024 {
		t.Errorf("clause 1 = %+v (default bytes)", f)
	}
	if f := p.Faults[2]; f.Kind != KindDelay || f.Site != "chain" || f.Delay != 200*time.Millisecond {
		t.Errorf("clause 2 = %+v", f)
	}
	if s := p.String(); !strings.Contains(s, "panic:poa:0.5") {
		t.Errorf("String() = %q", s)
	}
}

func TestParseDefaultsAndErrors(t *testing.T) {
	p, err := Parse("panic:fmi,error:dbg,slow:fastq,corrupt:fastq", 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.Faults[0].Prob != 1 || p.Faults[1].Prob != 1 {
		t.Error("panic/error default probability should be 1")
	}
	if p.Faults[2].Delay != 100*time.Millisecond {
		t.Error("slow default delay should be 100ms")
	}
	if p.Faults[3].Prob != 0.001 {
		t.Error("corrupt default probability should be 0.001")
	}
	for _, bad := range []string{
		"panic", "panic:", ":x", "nuke:poa", "panic:poa:2.0", "panic:poa:-1",
		"delay:x:notadur", "truncate:x:-5", "panic:poa:0.5:extra",
	} {
		if _, err := Parse(bad, 1); err == nil {
			t.Errorf("Parse(%q) should fail", bad)
		}
	}
	if p, err := Parse("", 1); err != nil || p != nil {
		t.Errorf("empty spec: plan=%v err=%v", p, err)
	}
}

func TestSiteMatching(t *testing.T) {
	f := Fault{Site: "poa"}
	if !f.matches("spoa") || !f.matches("poa") {
		t.Error("site poa should match labels poa and spoa")
	}
	if f.matches("chain") || f.matches("") {
		t.Error("site poa must not match chain or empty label")
	}
	star := Fault{Site: "*"}
	if !star.matches("anything") || !star.matches("") {
		t.Error("* should match everything")
	}
}

func TestPointPanicDeterministic(t *testing.T) {
	p, _ := Parse("panic:kern:1.0", 7)
	Arm(p)
	defer Disarm()
	SetLabel("kern")
	defer ClearLabel()
	defer func() {
		ip, ok := recover().(*InjectedPanic)
		if !ok {
			t.Fatal("expected *InjectedPanic")
		}
		if ip.Site != "kern" || ip.Label != "kern" {
			t.Errorf("panic = %+v", ip)
		}
	}()
	Point(context.Background())
	t.Fatal("Point did not panic at probability 1")
}

func TestPointRespectsLabelAndProbabilityZero(t *testing.T) {
	p, _ := Parse("panic:kern:1.0,panic:other:0.0", 7)
	Arm(p)
	defer Disarm()
	// Wrong label: nothing fires.
	SetLabel("unrelated")
	if err := Point(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Probability 0 never fires even with a matching label.
	SetLabel("other")
	for i := 0; i < 100; i++ {
		if err := Point(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	ClearLabel()
}

func TestPointProbabilityIsSeededAndStable(t *testing.T) {
	count := func(seed int64) int {
		p, _ := Parse("error:kern:0.3", seed)
		Arm(p)
		defer Disarm()
		SetLabel("kern")
		defer ClearLabel()
		fired := 0
		for i := 0; i < 1000; i++ {
			if Point(context.Background()) != nil {
				fired++
			}
		}
		return fired
	}
	a, b := count(99), count(99)
	if a != b {
		t.Errorf("same seed fired %d then %d times", a, b)
	}
	if a < 200 || a > 400 {
		t.Errorf("p=0.3 fired %d/1000 times", a)
	}
	if c := count(100); c == a {
		t.Logf("different seeds coincided (%d) — suspicious but possible", c)
	}
}

func TestPointDelayHonorsCancellation(t *testing.T) {
	p, _ := Parse("delay:kern:1h", 7)
	Arm(p)
	defer Disarm()
	SetLabel("kern")
	defer ClearLabel()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- Point(ctx) }()
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("delay fault ignored cancellation")
	}
}

func TestPointDisarmedIsNoop(t *testing.T) {
	Disarm()
	SetLabel("kern")
	defer ClearLabel()
	if err := Point(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestTruncateReader(t *testing.T) {
	p, _ := Parse("truncate:fasta:10", 7)
	src := bytes.NewReader(make([]byte, 100))
	data, err := io.ReadAll(p.WrapReader("fasta", src))
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != 10 {
		t.Errorf("read %d bytes, want 10", len(data))
	}
	// Non-matching site passes through untouched.
	src2 := bytes.NewReader(make([]byte, 100))
	if r := p.WrapReader("fastq", src2); r != src2 {
		t.Error("non-matching site should return the reader unchanged")
	}
}

func TestCorruptReaderDeterministic(t *testing.T) {
	read := func(seed int64) []byte {
		p, _ := Parse("corrupt:fastq:0.2", seed)
		src := bytes.NewReader(make([]byte, 4096))
		data, err := io.ReadAll(p.WrapReader("fastq", src))
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	a, b := read(5), read(5)
	if !bytes.Equal(a, b) {
		t.Error("same seed produced different corruption")
	}
	flipped := 0
	for _, x := range a {
		if x != 0 {
			flipped++
		}
	}
	if flipped < 400 || flipped > 1300 {
		t.Errorf("corrupted %d/4096 bytes at p=0.2", flipped)
	}
	if bytes.Equal(a, read(6)) {
		t.Error("different seeds produced identical corruption")
	}
}

func TestSlowReaderStillDelivers(t *testing.T) {
	p, _ := Parse("slow:fastq:1ms", 7)
	src := bytes.NewReader([]byte("hello"))
	data, err := io.ReadAll(p.WrapReader("fastq", src))
	if err != nil || string(data) != "hello" {
		t.Fatalf("slow reader corrupted stream: %q %v", data, err)
	}
}

func TestWrapReaderDisarmed(t *testing.T) {
	Disarm()
	src := bytes.NewReader([]byte("x"))
	if r := WrapReader("fasta", src); r != src {
		t.Error("disarmed WrapReader should return the reader unchanged")
	}
}

func TestPointDelayPreCancelledReturnsImmediately(t *testing.T) {
	p, _ := Parse("delay:kern:1h", 7)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	err := p.PointAt(ctx, "kern")
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("pre-cancelled delay trip-point slept %v", d)
	}
}

func TestSlowReaderHonorsCancellation(t *testing.T) {
	p, _ := Parse("slow:fastq:1h", 7)
	ctx, cancel := context.WithCancel(context.Background())
	r := p.WrapReaderCtx(ctx, "fastq", bytes.NewReader([]byte("hello")))
	done := make(chan error, 1)
	go func() {
		_, err := r.Read(make([]byte, 1))
		done <- err
	}()
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("slow reader slept through cancellation")
	}
}

func TestParseShardFaultKinds(t *testing.T) {
	spec := "killworker:w1:1,slowshard:w2:50ms,dropconn:*:0.5"
	p, err := Parse(spec, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.String(); got != spec {
		t.Errorf("round-trip = %q, want %q", got, spec)
	}
	// Shard kinds never fire at kernel trip-points or reader wraps.
	if err := p.PointAt(context.Background(), "w1/spoa"); err != nil {
		t.Fatalf("PointAt fired a shard fault: %v", err)
	}
	src := bytes.NewReader([]byte("x"))
	if r := p.WrapReader("w2/spoa", src); r != src {
		t.Error("WrapReader wrapped for a shard-only plan")
	}
}

func TestShardFaultDecisions(t *testing.T) {
	p, _ := Parse("killworker:w1:1,dropconn:w2:1,slowshard:w3:1ms", 3)
	ctx := context.Background()
	d, err := p.ShardFault(ctx, "w1/bsw")
	if err != nil || !d.Kill || d.Drop {
		t.Fatalf("w1 decision = %+v, %v; want Kill only", d, err)
	}
	d, err = p.ShardFault(ctx, "w2/bsw")
	if err != nil || d.Kill || !d.Drop {
		t.Fatalf("w2 decision = %+v, %v; want Drop only", d, err)
	}
	start := time.Now()
	d, err = p.ShardFault(ctx, "w3/bsw")
	if err != nil || d.Kill || d.Drop {
		t.Fatalf("w3 decision = %+v, %v; want neither", d, err)
	}
	if time.Since(start) < time.Millisecond {
		t.Error("slowshard did not sleep")
	}
	// Non-matching label: nothing fires, nothing counted.
	if d, _ := p.ShardFault(ctx, "w9/bsw"); d.Kill || d.Drop {
		t.Errorf("non-matching label fired: %+v", d)
	}
	for _, s := range p.Stats() {
		if s.Site == "w9" && s.Evals != 0 {
			t.Errorf("clause %s evaluated for non-matching label", s.Clause)
		}
	}
}

func TestShardFaultSlowShardHonorsCancellation(t *testing.T) {
	p, _ := Parse("slowshard:w1:1h", 3)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := p.ShardFault(ctx, "w1/bsw")
		done <- err
	}()
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("slowshard slept through cancellation")
	}
}

func TestShardFaultNilPlan(t *testing.T) {
	var p *Plan
	if d, err := p.ShardFault(context.Background(), "w1"); err != nil || d.Kill || d.Drop {
		t.Fatalf("nil plan = %+v, %v", d, err)
	}
	if err := p.PointAt(context.Background(), "w1"); err != nil {
		t.Fatalf("nil plan PointAt = %v", err)
	}
}
