package faultinject

import (
	"bytes"
	"context"
	"io"
	"strings"
	"testing"
)

func statFor(t *testing.T, stats []FaultStat, site string) FaultStat {
	t.Helper()
	for _, s := range stats {
		if s.Site == site {
			return s
		}
	}
	t.Fatalf("no stat for site %q in %+v", site, stats)
	return FaultStat{}
}

func TestStatsArmedVsTripped(t *testing.T) {
	p, err := Parse("error:always:1.0,error:never:0.0,error:elsewhere:1.0", 11)
	if err != nil {
		t.Fatal(err)
	}
	Arm(p)
	defer Disarm()
	defer ClearLabel()

	SetLabel("always")
	for i := 0; i < 5; i++ {
		_ = Point(context.Background())
	}
	SetLabel("never")
	for i := 0; i < 7; i++ {
		if err := Point(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	// "elsewhere" never matches a label: armed but never evaluated.

	stats := p.Stats()
	if len(stats) != 3 {
		t.Fatalf("got %d stats for 3 clauses", len(stats))
	}
	always := statFor(t, stats, "always")
	if always.Evals != 5 || always.Tripped != 5 {
		t.Errorf("always = %+v, want 5 evals / 5 trips", always)
	}
	if always.Clause == "" || always.Kind.String() != "error" {
		t.Errorf("always metadata = %+v", always)
	}
	never := statFor(t, stats, "never")
	if never.Evals != 7 || never.Tripped != 0 {
		t.Errorf("never = %+v, want 7 evals / 0 trips", never)
	}
	elsewhere := statFor(t, stats, "elsewhere")
	if elsewhere.Evals != 0 || elsewhere.Tripped != 0 {
		t.Errorf("elsewhere = %+v, want untouched clause to read 0/0", elsewhere)
	}
}

func TestStatsFractionalProbability(t *testing.T) {
	p, err := Parse("error:kern:0.3", 42)
	if err != nil {
		t.Fatal(err)
	}
	Arm(p)
	defer Disarm()
	SetLabel("kern")
	defer ClearLabel()
	const n = 1000
	fired := 0
	for i := 0; i < n; i++ {
		if Point(context.Background()) != nil {
			fired++
		}
	}
	s := p.Stats()[0]
	if s.Evals != n {
		t.Errorf("evals = %d, want %d", s.Evals, n)
	}
	if s.Tripped != uint64(fired) {
		t.Errorf("tripped = %d, but %d errors observed", s.Tripped, fired)
	}
	if s.Tripped == 0 || s.Tripped == n {
		t.Errorf("prob 0.3 tripped %d/%d times", s.Tripped, n)
	}
}

func TestStatsDelayCountsEveryFiring(t *testing.T) {
	p, err := Parse("delay:kern:1ms", 1)
	if err != nil {
		t.Fatal(err)
	}
	Arm(p)
	defer Disarm()
	SetLabel("kern")
	defer ClearLabel()
	for i := 0; i < 3; i++ {
		if err := Point(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	s := p.Stats()[0]
	if s.Evals != 3 || s.Tripped != 3 {
		t.Errorf("delay stats = %+v, want 3/3 (delays fire on every match)", s)
	}
}

func TestStatsReaderWraps(t *testing.T) {
	p, err := Parse("truncate:input:4,corrupt:other:1.0", 1)
	if err != nil {
		t.Fatal(err)
	}
	r := p.WrapReader("input", strings.NewReader("0123456789"))
	data, _ := io.ReadAll(r)
	if !bytes.Equal(data, []byte("0123")) {
		t.Errorf("truncated read = %q", data)
	}
	stats := p.Stats()
	trunc := statFor(t, stats, "input")
	if trunc.Evals != 1 || trunc.Tripped != 1 {
		t.Errorf("truncate stats = %+v, want 1/1 per wrapped stream", trunc)
	}
	corrupt := statFor(t, stats, "other")
	if corrupt.Evals != 0 || corrupt.Tripped != 0 {
		t.Errorf("non-matching wrap clause counted: %+v", corrupt)
	}
	// A second stream through the same clause counts again.
	io.Copy(io.Discard, p.WrapReader("input", strings.NewReader("abc")))
	if s := statFor(t, p.Stats(), "input"); s.Tripped != 2 {
		t.Errorf("second wrap not counted: %+v", s)
	}
}

func TestStatsNilPlan(t *testing.T) {
	var p *Plan
	if p.Stats() != nil {
		t.Error("nil plan stats should be nil")
	}
}
