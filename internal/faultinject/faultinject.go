// Package faultinject implements seeded, deterministic fault injection
// for the suite driver: a Plan parsed from a compact spec string can
// arm panic/delay/error trip-points inside kernel task loops and wrap
// the simio readers with truncating, corrupting or slow io.Readers.
// It exists to prove — in tests and via `gbench -faults` — that the
// runner degrades gracefully when a kernel misbehaves.
//
// The plan grammar is a comma-separated list of fault clauses:
//
//	kind:site[:param]
//
//	panic:poa:0.5        panic at matching trip-points with probability 0.5
//	delay:chain:200ms    sleep 200ms (context-aware) at matching trip-points
//	error:fmi:1.0        return an InjectedError from matching trip-points
//	truncate:fasta:4096  cut the reader off after 4096 bytes
//	corrupt:fastq:0.01   flip one bit per byte with probability 0.01
//	slow:fastq:1ms       sleep 1ms per Read call
//	killworker:w1:1.0    shard worker abandons everything and dies
//	slowshard:w2:400ms   shard worker stalls before executing a shard
//	dropconn:w3:0.5      shard worker drops its coordinator connection
//
// The last three are shard-fabric faults evaluated by worker processes
// at shard boundaries (see internal/shard); their labels are
// "workerID/kernel", so a site of "w1" targets one worker and a site
// of "spoa" targets every worker's shards of one kernel.
//
// A site matches a trip-point if it equals or is contained in the
// current label (so `panic:poa` hits the kernel registered as "spoa"),
// and "*" matches everything. All randomness derives from the plan
// seed, so a given plan injects the same faults run after run.
package faultinject

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// Kind enumerates the fault kinds.
type Kind uint8

// Fault kinds. The first three arm trip-points (Point); the last three
// wrap readers (WrapReader).
const (
	KindPanic Kind = iota
	KindDelay
	KindError
	KindTruncate
	KindCorrupt
	KindSlow
	KindKillWorker
	KindSlowShard
	KindDropConn
)

var kindNames = map[string]Kind{
	"panic": KindPanic, "delay": KindDelay, "error": KindError,
	"truncate": KindTruncate, "corrupt": KindCorrupt, "slow": KindSlow,
	"killworker": KindKillWorker, "slowshard": KindSlowShard, "dropconn": KindDropConn,
}

func (k Kind) String() string {
	for name, kk := range kindNames {
		if kk == k {
			return name
		}
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Fault is one armed fault clause.
type Fault struct {
	Kind  Kind
	Site  string
	Prob  float64       // panic/error: per-evaluation; corrupt: per-byte
	Delay time.Duration // delay/slow
	Bytes int64         // truncate: bytes passed through before EOF
}

// Plan is a parsed, seeded fault plan. A Plan is safe for concurrent
// use by trip-points on multiple workers.
type Plan struct {
	Seed   int64
	Faults []Fault
	// Per-fault evaluation counters: the nth evaluation of fault i
	// fires iff hash(seed, i, n) < prob, which makes the fired set a
	// pure function of the plan regardless of worker scheduling.
	evals []atomic.Uint64
	// Per-fault trip counters: how many evaluations actually fired
	// (panicked, errored, slept, or wrapped a reader). Armed-vs-tripped
	// is what observability reports surface.
	trips []atomic.Uint64
}

// FaultStat is one clause's armed-vs-tripped accounting.
type FaultStat struct {
	Clause  string // the clause in spec form, e.g. "panic:spoa:0.5"
	Kind    Kind
	Site    string
	Evals   uint64 // times the clause was evaluated at a matching site
	Tripped uint64 // times it actually fired
}

// Stats reports per-clause evaluation and trip counts accumulated
// since the plan was parsed. Nil-safe (returns nil).
func (p *Plan) Stats() []FaultStat {
	if p == nil {
		return nil
	}
	out := make([]FaultStat, len(p.Faults))
	for i := range p.Faults {
		out[i] = FaultStat{
			Clause:  clauseString(&p.Faults[i]),
			Kind:    p.Faults[i].Kind,
			Site:    p.Faults[i].Site,
			Evals:   p.evals[i].Load(),
			Tripped: p.trips[i].Load(),
		}
	}
	return out
}

// Parse builds a Plan from a spec string. An empty spec yields a nil
// plan (nothing armed).
func Parse(spec string, seed int64) (*Plan, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	p := &Plan{Seed: seed}
	for _, clause := range strings.Split(spec, ",") {
		parts := strings.Split(strings.TrimSpace(clause), ":")
		if len(parts) < 2 || len(parts) > 3 {
			return nil, fmt.Errorf("faultinject: bad clause %q (want kind:site[:param])", clause)
		}
		kind, ok := kindNames[parts[0]]
		if !ok {
			return nil, fmt.Errorf("faultinject: unknown fault kind %q in %q", parts[0], clause)
		}
		site := parts[1]
		if site == "" {
			return nil, fmt.Errorf("faultinject: empty site in %q", clause)
		}
		f := Fault{Kind: kind, Site: site}
		param := ""
		if len(parts) == 3 {
			param = parts[2]
		}
		var err error
		switch kind {
		case KindPanic, KindError, KindKillWorker, KindDropConn:
			f.Prob = 1.0
			if param != "" {
				f.Prob, err = strconv.ParseFloat(param, 64)
			}
		case KindCorrupt:
			f.Prob = 0.001
			if param != "" {
				f.Prob, err = strconv.ParseFloat(param, 64)
			}
		case KindDelay, KindSlow, KindSlowShard:
			f.Delay = 100 * time.Millisecond
			if param != "" {
				f.Delay, err = time.ParseDuration(param)
			}
		case KindTruncate:
			f.Bytes = 1024
			if param != "" {
				f.Bytes, err = strconv.ParseInt(param, 10, 64)
			}
		}
		if err != nil {
			return nil, fmt.Errorf("faultinject: bad parameter %q in %q: %v", param, clause, err)
		}
		if f.Prob < 0 || f.Prob > 1 {
			return nil, fmt.Errorf("faultinject: probability %v out of [0,1] in %q", f.Prob, clause)
		}
		if f.Delay < 0 || f.Bytes < 0 {
			return nil, fmt.Errorf("faultinject: negative parameter in %q", clause)
		}
		p.Faults = append(p.Faults, f)
	}
	p.evals = make([]atomic.Uint64, len(p.Faults))
	p.trips = make([]atomic.Uint64, len(p.Faults))
	return p, nil
}

// clauseString renders one fault back into spec form.
func clauseString(f *Fault) string {
	switch f.Kind {
	case KindDelay, KindSlow, KindSlowShard:
		return fmt.Sprintf("%s:%s:%s", f.Kind, f.Site, f.Delay)
	case KindTruncate:
		return fmt.Sprintf("%s:%s:%d", f.Kind, f.Site, f.Bytes)
	default: // panic, error, corrupt, killworker, dropconn
		return fmt.Sprintf("%s:%s:%g", f.Kind, f.Site, f.Prob)
	}
}

// String renders the plan back into spec form.
func (p *Plan) String() string {
	if p == nil {
		return ""
	}
	clauses := make([]string, len(p.Faults))
	for i := range p.Faults {
		clauses[i] = clauseString(&p.Faults[i])
	}
	return strings.Join(clauses, ",")
}

func (f *Fault) matches(label string) bool {
	if f.Site == "*" {
		return true
	}
	return label != "" && (f.Site == label || strings.Contains(label, f.Site))
}

// splitmix64 is the standard 64-bit finalizer-style mixer; good enough
// to turn (seed, fault, evaluation) into an i.i.d.-looking uniform draw.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// fire decides deterministically whether evaluation n of fault i
// fires, updating the clause's eval and trip counters.
func (p *Plan) fire(i int, prob float64) bool {
	n := p.evals[i].Add(1) - 1
	fired := false
	switch {
	case prob >= 1:
		fired = true
	case prob <= 0:
		fired = false
	default:
		u := splitmix64(uint64(p.Seed)*0x9e3779b97f4a7c15 ^ uint64(i)<<32 ^ n)
		fired = float64(u>>11)/(1<<53) < prob
	}
	if fired {
		p.trips[i].Add(1)
	}
	return fired
}

// ---- global arming ----

var (
	armed        atomic.Pointer[Plan]
	currentLabel atomic.Pointer[string]
)

// Arm installs p as the process-wide active plan (nil disarms). The
// suite driver runs kernels serially, so a single armed plan plus a
// label is enough to target faults at one kernel at a time.
func Arm(p *Plan) {
	if p != nil && len(p.Faults) == 0 {
		p = nil
	}
	armed.Store(p)
}

// Disarm removes the active plan.
func Disarm() { armed.Store(nil) }

// Armed reports the active plan (nil when disarmed).
func Armed() *Plan { return armed.Load() }

// SetLabel records the site label trip-points evaluate against —
// the suite runner sets it to the kernel name it is about to execute.
func SetLabel(label string) { currentLabel.Store(&label) }

// ClearLabel removes the current label.
func ClearLabel() { currentLabel.Store(nil) }

func label() string {
	if l := currentLabel.Load(); l != nil {
		return *l
	}
	return ""
}

// InjectedPanic is the value thrown by panic faults, so tests and
// error reports can tell an injected panic from a genuine bug.
type InjectedPanic struct {
	Site  string // the fault clause's site
	Label string // the label that matched
}

func (p *InjectedPanic) String() string {
	return fmt.Sprintf("faultinject: injected panic (site %q, kernel %q)", p.Site, p.Label)
}

// InjectedError is returned from trip-points by error faults.
type InjectedError struct {
	Site  string
	Label string
}

func (e *InjectedError) Error() string {
	return fmt.Sprintf("faultinject: injected error (site %q, kernel %q)", e.Site, e.Label)
}

// Point is the trip-point kernels place inside their task loops. When
// no plan is armed it is a single atomic load. With a plan armed it
// evaluates every matching fault: delay faults sleep (context-aware,
// returning ctx.Err() when cancelled mid-sleep), panic faults panic
// with an *InjectedPanic, and error faults return an *InjectedError.
func Point(ctx context.Context) error {
	p := armed.Load()
	if p == nil {
		return nil
	}
	return p.PointAt(ctx, label())
}

// PointAt evaluates p's trip-point faults against an explicit label,
// bypassing the process-global armed plan and label. Shard workers use
// it: several in-process workers can each hold their own plan and
// evaluate it under their own "workerID/kernel" label without racing
// over the global label. Nil-safe.
func (p *Plan) PointAt(ctx context.Context, lbl string) error {
	if p == nil {
		return nil
	}
	for i := range p.Faults {
		f := &p.Faults[i]
		if !f.matches(lbl) {
			continue
		}
		switch f.Kind {
		case KindDelay:
			p.evals[i].Add(1)
			p.trips[i].Add(1) // a delay fault fires on every matching evaluation
			if err := sleepCtx(ctx, f.Delay); err != nil {
				return err
			}
		case KindPanic:
			if p.fire(i, f.Prob) {
				panic(&InjectedPanic{Site: f.Site, Label: lbl})
			}
		case KindError:
			if p.fire(i, f.Prob) {
				return &InjectedError{Site: f.Site, Label: lbl}
			}
		}
	}
	return nil
}

// ShardDisruption is the outcome of evaluating a plan's shard-fabric
// faults at a shard boundary.
type ShardDisruption struct {
	Kill bool // killworker fired: the worker must abandon everything and die
	Drop bool // dropconn fired: the worker must drop its coordinator connection
}

// ShardFault evaluates the shard-fabric fault kinds (killworker,
// slowshard, dropconn) against the label, in clause order. A matching
// slowshard clause sleeps context-aware before the decision is
// returned; a cancelled sleep returns the context error. Kill and Drop
// report whether a killworker or dropconn clause fired. Nil-safe.
func (p *Plan) ShardFault(ctx context.Context, lbl string) (ShardDisruption, error) {
	var d ShardDisruption
	if p == nil {
		return d, nil
	}
	for i := range p.Faults {
		f := &p.Faults[i]
		if !f.matches(lbl) {
			continue
		}
		switch f.Kind {
		case KindSlowShard:
			p.evals[i].Add(1)
			p.trips[i].Add(1) // a slowshard fault fires on every matching evaluation
			if err := sleepCtx(ctx, f.Delay); err != nil {
				return d, err
			}
		case KindKillWorker:
			if p.fire(i, f.Prob) {
				d.Kill = true
			}
		case KindDropConn:
			if p.fire(i, f.Prob) {
				d.Drop = true
			}
		}
	}
	return d, nil
}

// sleepCtx sleeps d, returning early with the context error when ctx
// is cancelled — including when it was already cancelled on entry, so
// a fault-injected delay never outlives the attempt it was meant to
// stall.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if d <= 0 {
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
