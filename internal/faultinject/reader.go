package faultinject

import (
	"context"
	"io"
	"math/rand"
	"time"
)

// WrapReader applies the armed plan's reader faults (truncate, corrupt,
// slow) whose site matches, innermost first in clause order. With no
// plan armed, or no matching clause, r is returned unchanged. Driver
// code wraps its input streams once at open time:
//
//	reads, err := simio.ReadFastqAuto(faultinject.WrapReader("fastq", f))
func WrapReader(site string, r io.Reader) io.Reader {
	return WrapReaderCtx(context.Background(), site, r)
}

// WrapReaderCtx is WrapReader with cooperative cancellation: a slow
// reader's injected sleeps end early (the Read returns ctx.Err()) when
// ctx is cancelled, instead of sleeping through the caller's deadline.
func WrapReaderCtx(ctx context.Context, site string, r io.Reader) io.Reader {
	p := armed.Load()
	if p == nil {
		return r
	}
	return p.WrapReaderCtx(ctx, site, r)
}

// WrapReader applies p's matching reader faults around r.
func (p *Plan) WrapReader(site string, r io.Reader) io.Reader {
	return p.WrapReaderCtx(context.Background(), site, r)
}

// WrapReaderCtx applies p's matching reader faults around r, with slow
// readers honouring ctx cancellation mid-sleep.
func (p *Plan) WrapReaderCtx(ctx context.Context, site string, r io.Reader) io.Reader {
	for i := range p.Faults {
		f := &p.Faults[i]
		if !f.matches(site) {
			continue
		}
		switch f.Kind {
		case KindTruncate, KindCorrupt, KindSlow:
			// Wrapping a stream counts as the clause tripping once.
			p.evals[i].Add(1)
			p.trips[i].Add(1)
		}
		switch f.Kind {
		case KindTruncate:
			r = &truncateReader{r: r, remain: f.Bytes}
		case KindCorrupt:
			// Reads are sequential, so a private seeded rng keeps the
			// corruption pattern deterministic for a given plan.
			r = &corruptReader{
				r:    r,
				prob: f.Prob,
				rng:  rand.New(rand.NewSource(p.Seed ^ int64(splitmix64(uint64(i)+0xc0ffee)))),
			}
		case KindSlow:
			r = &slowReader{r: r, ctx: ctx, delay: f.Delay}
		}
	}
	return r
}

// truncateReader simulates a chopped file: it passes through the first
// `remain` bytes and then reports a clean EOF, exactly what a
// mid-transfer-truncated .fastq.gz looks like on disk.
type truncateReader struct {
	r      io.Reader
	remain int64
}

func (t *truncateReader) Read(b []byte) (int, error) {
	if t.remain <= 0 {
		return 0, io.EOF
	}
	if int64(len(b)) > t.remain {
		b = b[:t.remain]
	}
	n, err := t.r.Read(b)
	t.remain -= int64(n)
	if t.remain <= 0 && err == nil {
		err = io.EOF
	}
	return n, err
}

// corruptReader flips one random bit per byte with probability prob.
type corruptReader struct {
	r    io.Reader
	prob float64
	rng  *rand.Rand
}

func (c *corruptReader) Read(b []byte) (int, error) {
	n, err := c.r.Read(b)
	for i := 0; i < n; i++ {
		if c.rng.Float64() < c.prob {
			b[i] ^= 1 << uint(c.rng.Intn(8))
		}
	}
	return n, err
}

// slowReader sleeps before every Read call, modelling a starved or
// network-backed input stream. The sleep is context-aware: once the
// wrap context is cancelled, Read stops sleeping and reports the
// context error instead of stalling its caller through a deadline.
type slowReader struct {
	r     io.Reader
	ctx   context.Context
	delay time.Duration
}

func (s *slowReader) Read(b []byte) (int, error) {
	if err := sleepCtx(s.ctx, s.delay); err != nil {
		return 0, err
	}
	return s.r.Read(b)
}
