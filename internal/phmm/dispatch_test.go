package phmm

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/genome"
	"repro/internal/parallel"
)

// TestRunKernelDispatchPolicyPure pins that routing the phmm
// active-region loop through parallel.dispatch is pure policy:
// aggregates and per-task work distribution are identical whether the
// shared-counter or the work-stealing scheduler ran it.
func TestRunKernelDispatchPolicyPure(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	regions := make([]*Region, 10)
	for i := range regions {
		hap := genome.Random(rng, 80+rng.Intn(240)) // skewed region sizes
		var rg Region
		rg.Haps = []genome.Seq{hap, hap.ReverseComplement()}
		for r := 0; r < 2+rng.Intn(5); r++ {
			start := rng.Intn(len(hap) - 40)
			rg.Reads = append(rg.Reads, hap[start:start+40])
			rg.Quals = append(rg.Quals, uniformQual(40, 30))
		}
		regions[i] = &rg
	}
	run := func(policy int) KernelResult {
		defer parallel.ForceDispatch(policy)()
		return RunKernel(regions, 4)
	}
	chunked := run(parallel.DispatchChunked)
	stealing := run(parallel.DispatchStealing)
	if chunked.CellUpdates != stealing.CellUpdates ||
		chunked.Pairs != stealing.Pairs ||
		chunked.Fallbacks != stealing.Fallbacks ||
		chunked.Regions != stealing.Regions {
		t.Errorf("dispatch policy changed results:\nchunked  %+v\nstealing %+v", chunked, stealing)
	}
	if !reflect.DeepEqual(chunked.TaskStats.Summarize(), stealing.TaskStats.Summarize()) {
		t.Errorf("dispatch policy changed task-work distribution:\nchunked  %+v\nstealing %+v",
			chunked.TaskStats.Summarize(), stealing.TaskStats.Summarize())
	}
}
