// NEON kernel for the lane-batched PairHMM row update. See row_asm.go
// for the contract: bit-identical to two pure-Go rowQuad sweeps (same
// per-lane operations in the same rounding order — rowQuad is written
// fusion-free specifically so this holds on arm64).
//
// The Go arm64 assembler exposes no packed FMUL/FADD mnemonics, so the
// kernel builds both from FMLA (Vd += Vn*Vm, one rounding):
//
//   a*b  ==  FMLA into a zeroed register: round(0 + a*b) == round(a*b)
//            for the forward pass's non-negative operands (a*b is
//            never -0, the only case where adding +0 changes the bits)
//   x+y  ==  FMLA with a broadcast 1.0:   round(x + y*1.0) == round(x+y)
//            unconditionally (y*1.0 is exact)
//
// Prior selection is an xor-select through the shared blendTab entry:
// prior = (diff AND mask) XOR mism, with diff = match XOR mism
// precomputed once — all-ones mask yields match, all-zeros yields
// mism, bit-exactly, without needing a bit-clear or blend mnemonic.
//
// Register plan:
//   V0  tgo (broadcast)       V13-V17 prev-row loads, lo quad
//   V1  tge (broadcast)       V20-V24 prev-row loads, hi quad
//   V3  prMismM (broadcast)   V10-V12, V18, V19, V25 transients
//   V5  prMismG (broadcast)   V26/V27 lastM/lastD lo
//   V6  diffM = prMatchM^prMismM    V28/V29 lastM/lastD hi
//   V7  diffG = prMatchG^prMismG    V30 1.0 (broadcast)
//   R1/R2/R3 prev M/I/D   R4/R5/R6 cur M/I/D
//   R7 mask cursor  R8 blend table  R9 columns left
//   R10/R11/R12 scratch
//
// Column j (1-based) lives at byte offset j*32; the lo quad at +0, the
// hi quad at +16. The prev-row pointers walk one column behind (they
// point at column j-1 when iteration j begins) so the diagonal loads
// post-increment them and the straight-up loads read at +0/+16; the
// cur-row pointers walk at column j and every store post-increments.

#include "textflag.h"

TEXT ·rowLanesAsm(SB), NOSPLIT, $0-8
	MOVD a+0(FP), R0
	MOVD 0(R0), R1   // pPM
	MOVD 8(R0), R2   // pPI
	MOVD 16(R0), R3  // pPD
	MOVD 24(R0), R4  // pCM
	MOVD 32(R0), R5  // pCI
	MOVD 40(R0), R6  // pCD
	MOVD 48(R0), R7  // mask
	MOVD 56(R0), R8  // blend table
	MOVD 64(R0), R9  // n

	FMOVS 88(R0), F0 // tgo
	VDUP  V0.S[0], V0.S4
	FMOVS 92(R0), F1 // tge
	VDUP  V1.S[0], V1.S4
	FMOVS 72(R0), F2 // prMatchM
	VDUP  V2.S[0], V2.S4
	FMOVS 76(R0), F3 // prMismM
	VDUP  V3.S[0], V3.S4
	FMOVS 80(R0), F4 // prMatchG
	VDUP  V4.S[0], V4.S4
	FMOVS 84(R0), F5 // prMismG
	VDUP  V5.S[0], V5.S4
	VEOR  V3.B16, V2.B16, V6.B16 // diffM
	VEOR  V5.B16, V4.B16, V7.B16 // diffG
	FMOVS $1.0, F30
	VDUP  V30.S[0], V30.S4       // 1.0 broadcast (FMLA add trick)

	// Column 0 of the current rows is the DP boundary: all zero. The
	// post-incrementing stores leave the cur pointers at column 1.
	VEOR   V16.B16, V16.B16, V16.B16
	VST1.P [V16.S4], 16(R4)
	VST1.P [V16.S4], 16(R4)
	VST1.P [V16.S4], 16(R5)
	VST1.P [V16.S4], 16(R5)
	VST1.P [V16.S4], 16(R6)
	VST1.P [V16.S4], 16(R6)

	// D chains start at the boundary zeros.
	VEOR V26.B16, V26.B16, V26.B16
	VEOR V27.B16, V27.B16, V27.B16
	VEOR V28.B16, V28.B16, V28.B16
	VEOR V29.B16, V29.B16, V29.B16

	CMP $0, R9
	BLE done

loop:
	MOVBU.P 1(R7), R12 // mb = mask[j-1]

	// Diagonal loads post-increment the prev pointers to column j;
	// straight-up loads then read at +0/+16 without advancing.
	VLD1.P 16(R1), [V13.S4] // pMd lo
	VLD1.P 16(R1), [V20.S4] // pMd hi
	VLD1   (R1), [V14.S4]   // pMu lo
	ADD    $16, R1, R11
	VLD1   (R11), [V21.S4]  // pMu hi
	VLD1.P 16(R2), [V15.S4] // pId lo
	VLD1.P 16(R2), [V22.S4] // pId hi
	VLD1   (R2), [V16.S4]   // pIu lo
	ADD    $16, R2, R11
	VLD1   (R11), [V23.S4]  // pIu hi
	VLD1.P 16(R3), [V17.S4] // pDd lo
	VLD1.P 16(R3), [V24.S4] // pDd hi

	// ---------- lo quad (lanes 0-3, nibble mb&15) ----------
	AND  $15, R12, R10
	LSL  $4, R10, R10
	ADD  R8, R10, R10
	VLD1 (R10), [V10.S4] // lane-select mask

	// prM = mask ? prMatchM : prMismM ; prG likewise (xor-select).
	VAND V6.B16, V10.B16, V11.B16
	VEOR V3.B16, V11.B16, V11.B16 // V11 = prM
	VAND V7.B16, V10.B16, V12.B16
	VEOR V5.B16, V12.B16, V12.B16 // V12 = prG

	// mj = pMd*prM + (pId+pDd)*prG
	VMOV  V15.B16, V18.B16
	VFMLA V17.S4, V30.S4, V18.S4 // V18 = pId + pDd
	VEOR  V19.B16, V19.B16, V19.B16
	VFMLA V13.S4, V11.S4, V19.S4 // V19 = pMd*prM
	VEOR  V25.B16, V25.B16, V25.B16
	VFMLA V18.S4, V12.S4, V25.S4 // V25 = (pId+pDd)*prG
	VFMLA V25.S4, V30.S4, V19.S4 // V19 = mj

	// ij = pMu*tgo + pIu*tge
	VEOR  V18.B16, V18.B16, V18.B16
	VFMLA V14.S4, V0.S4, V18.S4
	VEOR  V25.B16, V25.B16, V25.B16
	VFMLA V16.S4, V1.S4, V25.S4
	VFMLA V25.S4, V30.S4, V18.S4 // V18 = ij

	// dj = lastM*tgo + lastD*tge
	VEOR  V25.B16, V25.B16, V25.B16
	VFMLA V26.S4, V0.S4, V25.S4
	VEOR  V10.B16, V10.B16, V10.B16
	VFMLA V27.S4, V1.S4, V10.S4
	VFMLA V10.S4, V30.S4, V25.S4 // V25 = dj

	VST1.P [V19.S4], 16(R4)
	VST1.P [V18.S4], 16(R5)
	VST1.P [V25.S4], 16(R6)
	VMOV   V19.B16, V26.B16 // lastM lo
	VMOV   V25.B16, V27.B16 // lastD lo

	// ---------- hi quad (lanes 4-7, nibble mb>>4) ----------
	LSR  $4, R12, R10
	LSL  $4, R10, R10
	ADD  R8, R10, R10
	VLD1 (R10), [V10.S4]

	VAND V6.B16, V10.B16, V11.B16
	VEOR V3.B16, V11.B16, V11.B16
	VAND V7.B16, V10.B16, V12.B16
	VEOR V5.B16, V12.B16, V12.B16

	VMOV  V22.B16, V18.B16
	VFMLA V24.S4, V30.S4, V18.S4
	VEOR  V19.B16, V19.B16, V19.B16
	VFMLA V20.S4, V11.S4, V19.S4
	VEOR  V25.B16, V25.B16, V25.B16
	VFMLA V18.S4, V12.S4, V25.S4
	VFMLA V25.S4, V30.S4, V19.S4 // mj hi

	VEOR  V18.B16, V18.B16, V18.B16
	VFMLA V21.S4, V0.S4, V18.S4
	VEOR  V25.B16, V25.B16, V25.B16
	VFMLA V23.S4, V1.S4, V25.S4
	VFMLA V25.S4, V30.S4, V18.S4 // ij hi

	VEOR  V25.B16, V25.B16, V25.B16
	VFMLA V28.S4, V0.S4, V25.S4
	VEOR  V10.B16, V10.B16, V10.B16
	VFMLA V29.S4, V1.S4, V10.S4
	VFMLA V10.S4, V30.S4, V25.S4 // dj hi

	VST1.P [V19.S4], 16(R4)
	VST1.P [V18.S4], 16(R5)
	VST1.P [V25.S4], 16(R6)
	VMOV   V19.B16, V28.B16 // lastM hi
	VMOV   V25.B16, V29.B16 // lastD hi

	SUBS $1, R9, R9
	BNE  loop

done:
	RET
