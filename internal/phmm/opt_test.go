package phmm

import (
	"math/rand"
	"testing"

	"repro/internal/genome"
)

func randomReadHap(rng *rand.Rand) (genome.Seq, []byte, genome.Seq) {
	m := 10 + rng.Intn(150)
	n := m + rng.Intn(100)
	read := genome.Random(rng, m)
	qual := make([]byte, m)
	for i := range qual {
		qual[i] = byte(10 + rng.Intn(40))
	}
	hap := genome.Random(rng, n)
	// Half the time make the read a mutated slice of the haplotype, the
	// realistic high-likelihood shape.
	if rng.Intn(2) == 0 {
		off := rng.Intn(n - m + 1)
		copy(read, hap[off:off+m])
		for k := 0; k < m/20+1; k++ {
			read[rng.Intn(m)] = genome.Base(rng.Intn(4))
		}
	}
	return read, qual, hap
}

// Pooled evaluation must be bit-identical to the allocating path.
func TestLikelihoodIntoDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	s := NewScratch()
	for trial := 0; trial < 200; trial++ {
		read, qual, hap := randomReadHap(rng)
		want := Likelihood(read, qual, hap)
		got := LikelihoodInto(read, qual, hap, s)
		if got != want {
			t.Fatalf("trial %d (|r|=%d |h|=%d): got %+v want %+v",
				trial, len(read), len(hap), got, want)
		}
	}
}

func TestEvaluateRegionIntoDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	s := NewScratch()
	for trial := 0; trial < 20; trial++ {
		rg := randomRegion(rng, 4+rng.Intn(6), 2+rng.Intn(3))
		want := EvaluateRegion(rg)
		got := EvaluateRegionInto(rg, s)
		if got.CellUpdates != want.CellUpdates || got.Fallbacks != want.Fallbacks {
			t.Fatalf("trial %d: counters differ: got %+v want %+v", trial, got, want)
		}
		for i := range want.BestHap {
			if got.BestHap[i] != want.BestHap[i] {
				t.Fatalf("trial %d: BestHap[%d] = %d, want %d", trial, i, got.BestHap[i], want.BestHap[i])
			}
		}
		for i := range want.Likelihoods {
			if got.Likelihoods[i] != want.Likelihoods[i] {
				t.Fatalf("trial %d: Likelihoods[%d] = %v, want %v", trial, i, got.Likelihoods[i], want.Likelihoods[i])
			}
		}
	}
}

func randomRegion(rng *rand.Rand, reads, haps int) *Region {
	rg := &Region{}
	for h := 0; h < haps; h++ {
		rg.Haps = append(rg.Haps, genome.Random(rng, 100+rng.Intn(100)))
	}
	for r := 0; r < reads; r++ {
		read, qual, _ := randomReadHap(rng)
		rg.Reads = append(rg.Reads, read)
		rg.Quals = append(rg.Quals, qual)
	}
	return rg
}

// The steady-state region loop must be allocation-free once the
// scratch is warm: the zero-allocation invariant the PR gates on.
func TestEvaluateRegionIntoZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	rg := randomRegion(rng, 6, 3)
	s := NewScratch()
	EvaluateRegionInto(rg, s) // warm the scratch
	n := testing.AllocsPerRun(20, func() {
		EvaluateRegionInto(rg, s)
	})
	if n != 0 {
		t.Fatalf("AllocsPerRun = %v, want 0", n)
	}
}

// Unpooled versus pooled region evaluation: the bench harness's phmm
// before/after pair.
func BenchmarkEvaluateRegion(b *testing.B) {
	rng := rand.New(rand.NewSource(14))
	rg := randomRegion(rng, 8, 4)
	b.Run("alloc", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			EvaluateRegion(rg)
		}
	})
	b.Run("pooled", func(b *testing.B) {
		b.ReportAllocs()
		s := NewScratch()
		for i := 0; i < b.N; i++ {
			EvaluateRegionInto(rg, s)
		}
	})
}
