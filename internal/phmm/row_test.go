package phmm

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/cpufeat"
	"repro/internal/genome"
	"repro/internal/lanes"
)

// TestRowLanesMatchesRowQuad pins the architecture-dispatched row
// kernel (SSE2 assembly on amd64) to the pure-Go quad sweeps,
// bit-for-bit: both replay the same per-lane operations in the same
// rounding order, so there is no tolerance here.
func TestRowLanesMatchesRowQuad(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(67)
		w := (n + 1) * lanes.Width
		mk := func() []float32 {
			s := make([]float32, w)
			for i := range s {
				s[i] = rng.Float32() * 1e3
			}
			return s
		}
		prevM, prevI, prevD := mk(), mk(), mk()
		mask := make([]uint8, n)
		for i := range mask {
			mask[i] = uint8(rng.Intn(256))
		}
		priorMatch := 1 - rng.Float32()*0.1
		priorMismatch := rng.Float32() * 0.03

		gotM, gotI, gotD := mk(), mk(), mk()
		rowLanes(mask, priorMatch, priorMismatch,
			prevM, prevI, prevD, gotM, gotI, gotD, n)

		wantM, wantI, wantD := mk(), mk(), mk()
		for base := 0; base <= 4; base += 4 {
			rowQuad(mask, priorMatch, priorMismatch,
				&prevM[0], &prevI[0], &prevD[0],
				&wantM[0], &wantI[0], &wantD[0], n, base)
		}

		for name, pair := range map[string][2][]float32{
			"M": {gotM, wantM}, "I": {gotI, wantI}, "D": {gotD, wantD},
		} {
			got, want := pair[0], pair[1]
			for o := 0; o < (n+1)*lanes.Width; o++ {
				if math.Float32bits(got[o]) != math.Float32bits(want[o]) {
					t.Fatalf("trial %d (n=%d, asm=%v): row %s[%d] = %x, want %x",
						trial, n, haveRowAsm, name, o,
						math.Float32bits(got[o]), math.Float32bits(want[o]))
				}
			}
		}
	}
}

// TestRowLanesSimdOffMatches pins GBENCH_SIMD=off and re-runs a full
// lane-batched region evaluation: rowLanes must fall back to the
// portable quad sweeps and produce bit-identical likelihoods to the
// default (assembly on amd64/arm64) dispatch.
func TestRowLanesSimdOffMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(78))
	mkSeq := func(n int) genome.Seq {
		s := make(genome.Seq, n)
		for i := range s {
			s[i] = genome.Base(rng.Intn(4))
		}
		return s
	}
	rg := &Region{}
	for h := 0; h < 2*lanes.Width+3; h++ {
		rg.Haps = append(rg.Haps, mkSeq(40+rng.Intn(30)))
	}
	for r := 0; r < 6; r++ {
		seq := mkSeq(20 + rng.Intn(20))
		quals := make([]byte, len(seq))
		for i := range quals {
			quals[i] = byte(10 + rng.Intn(30))
		}
		rg.Reads = append(rg.Reads, seq)
		rg.Quals = append(rg.Quals, quals)
	}
	def := EvaluateRegionInto(rg, NewScratch())
	defLik := append([]float64(nil), def.Likelihoods...)
	restore := cpufeat.ForceForTest("off")
	defer restore()
	off := EvaluateRegionInto(rg, NewScratch())
	if len(defLik) != len(off.Likelihoods) {
		t.Fatalf("likelihood count differs: %d vs %d", len(defLik), len(off.Likelihoods))
	}
	for i := range defLik {
		if math.Float64bits(defLik[i]) != math.Float64bits(off.Likelihoods[i]) {
			t.Fatalf("pair %d: default dispatch %v != GBENCH_SIMD=off %v", i, defLik[i], off.Likelihoods[i])
		}
	}
}
