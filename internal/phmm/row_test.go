package phmm

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/lanes"
)

// TestRowLanesMatchesRowQuad pins the architecture-dispatched row
// kernel (SSE2 assembly on amd64) to the pure-Go quad sweeps,
// bit-for-bit: both replay the same per-lane operations in the same
// rounding order, so there is no tolerance here.
func TestRowLanesMatchesRowQuad(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(67)
		w := (n + 1) * lanes.Width
		mk := func() []float32 {
			s := make([]float32, w)
			for i := range s {
				s[i] = rng.Float32() * 1e3
			}
			return s
		}
		prevM, prevI, prevD := mk(), mk(), mk()
		mask := make([]uint8, n)
		for i := range mask {
			mask[i] = uint8(rng.Intn(256))
		}
		priorMatch := 1 - rng.Float32()*0.1
		priorMismatch := rng.Float32() * 0.03

		gotM, gotI, gotD := mk(), mk(), mk()
		rowLanes(mask, priorMatch, priorMismatch,
			prevM, prevI, prevD, gotM, gotI, gotD, n)

		wantM, wantI, wantD := mk(), mk(), mk()
		for base := 0; base <= 4; base += 4 {
			rowQuad(mask, priorMatch, priorMismatch,
				&prevM[0], &prevI[0], &prevD[0],
				&wantM[0], &wantI[0], &wantD[0], n, base)
		}

		for name, pair := range map[string][2][]float32{
			"M": {gotM, wantM}, "I": {gotI, wantI}, "D": {gotD, wantD},
		} {
			got, want := pair[0], pair[1]
			for o := 0; o < (n+1)*lanes.Width; o++ {
				if math.Float32bits(got[o]) != math.Float32bits(want[o]) {
					t.Fatalf("trial %d (n=%d, asm=%v): row %s[%d] = %x, want %x",
						trial, n, haveRowAsm, name, o,
						math.Float32bits(got[o]), math.Float32bits(want[o]))
				}
			}
		}
	}
}
