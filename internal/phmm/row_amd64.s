// SSE2 kernel for the lane-batched PairHMM row update. See
// row_asm.go for the contract: bit-identical to two pure-Go rowQuad
// sweeps (same per-lane operations in the same rounding order).
//
// Register plan:
//   X0  tgo (broadcast)      X6 lastM lo   X10-X14 transients
//   X1  tge (broadcast)      X7 lastD lo
//   X2  prMatchM (broadcast) X8 lastM hi
//   X3  prMismM (broadcast)  X9 lastD hi
//   X4  prMatchG (broadcast)
//   X5  prMismG (broadcast)
//   SI/DI/R8 prev M/I/D   R9/R10/R11 cur M/I/D
//   R12 mask cursor  BX blend table  CX columns left  DX byte offset
//   R13/AX nibble scratch
//
// Column j (1-based) lives at byte offset j*32; the lo quad at +0,
// the hi quad at +16; diagonal predecessors at -32/-16.

#include "textflag.h"

TEXT ·rowLanesAsm(SB), NOSPLIT, $0-8
	MOVQ a+0(FP), AX
	MOVQ 0(AX), SI   // pPM
	MOVQ 8(AX), DI   // pPI
	MOVQ 16(AX), R8  // pPD
	MOVQ 24(AX), R9  // pCM
	MOVQ 32(AX), R10 // pCI
	MOVQ 40(AX), R11 // pCD
	MOVQ 48(AX), R12 // mask
	MOVQ 56(AX), BX  // blend table
	MOVQ 64(AX), CX  // n

	MOVSS  72(AX), X2 // prMatchM
	SHUFPS $0, X2, X2
	MOVSS  76(AX), X3 // prMismM
	SHUFPS $0, X3, X3
	MOVSS  80(AX), X4 // prMatchG
	SHUFPS $0, X4, X4
	MOVSS  84(AX), X5 // prMismG
	SHUFPS $0, X5, X5
	MOVSS  88(AX), X0 // tgo
	SHUFPS $0, X0, X0
	MOVSS  92(AX), X1 // tge
	SHUFPS $0, X1, X1

	// Column 0 of the current rows is the DP boundary: all zero.
	XORPS  X10, X10
	MOVUPS X10, 0(R9)
	MOVUPS X10, 16(R9)
	MOVUPS X10, 0(R10)
	MOVUPS X10, 16(R10)
	MOVUPS X10, 0(R11)
	MOVUPS X10, 16(R11)

	// D chains start at the boundary zeros.
	XORPS X6, X6
	XORPS X7, X7
	XORPS X8, X8
	XORPS X9, X9

	MOVQ  $32, DX // byte offset of column 1
	TESTQ CX, CX
	JLE   done

loop:
	MOVBLZX (R12), R13 // mb = mask[j-1]
	INCQ    R12

	// ---------- lo quad (lanes 0-3, nibble mb&15) ----------
	MOVQ   R13, AX
	ANDQ   $15, AX
	SHLQ   $4, AX
	MOVUPS (BX)(AX*1), X10 // lane-select mask

	// prM = mask ? prMatchM : prMismM ; prG likewise.
	MOVAPS X10, X11
	ANDPS  X2, X11
	MOVAPS X10, X12
	ANDNPS X3, X12
	ORPS   X12, X11        // X11 = prM
	MOVAPS X10, X12
	ANDPS  X4, X12
	ANDNPS X5, X10
	ORPS   X10, X12        // X12 = prG

	// mj = pMd*prM + (pId+pDd)*prG
	MOVUPS -32(SI)(DX*1), X13
	MULPS  X11, X13
	MOVUPS -32(DI)(DX*1), X14
	MOVUPS -32(R8)(DX*1), X10
	ADDPS  X14, X10
	MULPS  X12, X10
	ADDPS  X10, X13        // X13 = mj

	// ij = pMu*tgo + pIu*tge
	MOVUPS (SI)(DX*1), X14
	MULPS  X0, X14
	MOVUPS (DI)(DX*1), X11
	MULPS  X1, X11
	ADDPS  X11, X14        // X14 = ij

	// dj = lastM*tgo + lastD*tge
	MOVAPS X6, X12
	MULPS  X0, X12
	MOVAPS X7, X11
	MULPS  X1, X11
	ADDPS  X11, X12        // X12 = dj

	MOVUPS X13, (R9)(DX*1)
	MOVUPS X14, (R10)(DX*1)
	MOVUPS X12, (R11)(DX*1)
	MOVAPS X13, X6         // lastM lo
	MOVAPS X12, X7         // lastD lo

	// ---------- hi quad (lanes 4-7, nibble mb>>4) ----------
	SHRQ   $4, R13
	SHLQ   $4, R13
	MOVUPS (BX)(R13*1), X10

	MOVAPS X10, X11
	ANDPS  X2, X11
	MOVAPS X10, X12
	ANDNPS X3, X12
	ORPS   X12, X11
	MOVAPS X10, X12
	ANDPS  X4, X12
	ANDNPS X5, X10
	ORPS   X10, X12

	MOVUPS -16(SI)(DX*1), X13
	MULPS  X11, X13
	MOVUPS -16(DI)(DX*1), X14
	MOVUPS -16(R8)(DX*1), X10
	ADDPS  X14, X10
	MULPS  X12, X10
	ADDPS  X10, X13

	MOVUPS 16(SI)(DX*1), X14
	MULPS  X0, X14
	MOVUPS 16(DI)(DX*1), X11
	MULPS  X1, X11
	ADDPS  X11, X14

	MOVAPS X8, X12
	MULPS  X0, X12
	MOVAPS X9, X11
	MULPS  X1, X11
	ADDPS  X11, X12

	MOVUPS X13, 16(R9)(DX*1)
	MOVUPS X14, 16(R10)(DX*1)
	MOVUPS X12, 16(R11)(DX*1)
	MOVAPS X13, X8
	MOVAPS X12, X9

	ADDQ $32, DX
	DECQ CX
	JNZ  loop

done:
	RET
