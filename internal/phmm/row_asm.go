//go:build amd64 || arm64

package phmm

import "repro/internal/cpufeat"

// Assembly fast paths for the lane-batched row update: SSE2 on amd64
// (row_amd64.s), NEON on arm64 (row_arm64.s). Both kernels replay
// rowQuad's per-lane arithmetic with packed 4-wide ops — same
// operations, same rounding order, so their output is bit-identical to
// the pure-Go quad path (TestRowLanesMatchesRowQuad asserts exactly
// that). SSE2 is in the amd64 baseline and ASIMD in the arm64
// baseline, so the hardware always qualifies; dispatch still consults
// cpufeat so GBENCH_SIMD=off pins the portable quad path — every asm
// kernel in the suite has a forced-portable twin reachable without
// rebuilding.
//
// The arm64 kernel earns bit-identity differently than the amd64 one:
// the Go arm64 assembler exposes no packed FMUL/FADD, so the NEON
// kernel computes a*b as FMLA into a zeroed register (one rounding of
// 0 + a*b == one rounding of a*b; exact here because every operand in
// the forward pass is non-negative, so a*b is never -0) and x+y as
// FMLA with a broadcast 1.0 (one rounding of x + y*1.0; y*1.0 is
// always exact). The Go reference holds up its side by being
// fusion-free — see rowQuad.

// haveRowAsm reports whether rowLanes dispatches to an assembly
// kernel on this architecture (informational, used by tests/docs).
const haveRowAsm = true

// rowArgs is the flattened argument block for rowLanesAsm. Field
// offsets are fixed by the assembly — keep layout and the int64 n in
// sync with row_amd64.s and row_arm64.s.
type rowArgs struct {
	pPM, pPI, pPD *float32 // previous M/I/D rows (stride lanes.Width)
	pCM, pCI, pCD *float32 // current M/I/D rows
	mask          *uint8   // per-column 8-lane match bits, len n
	tab           *uint32  // &blendTab[0][0]: nibble -> 4-lane select mask
	n             int64    // columns (haplotype positions)
	prMatchM      float32  // priorMatch * tMM
	prMismM       float32  // priorMismatch * tMM
	prMatchG      float32  // priorMatch * tIM
	prMismG       float32  // priorMismatch * tIM
	tgo           float32  // tMI (== tMD)
	tge           float32  // tII (== tDD)
}

// blendTab maps a 4-bit lane-match nibble to a 128-bit select mask:
// entry i, dword k is all-ones iff bit k of i is set. The amd64 kernel
// gathers one entry per nibble and selects between the match and
// mismatch prior vectors with AND/ANDN/OR; the arm64 kernel uses the
// same entry in an xor-select, prior = (diff AND mask) XOR mism with
// diff = match XOR mism.
var blendTab = func() (t [16][4]uint32) {
	for i := range t {
		for k := 0; k < 4; k++ {
			if i>>k&1 == 1 {
				t[i][k] = ^uint32(0)
			}
		}
	}
	return
}()

//go:noescape
func rowLanesAsm(a *rowArgs)

// rowLanes advances all eight lanes of one read position: column 0 of
// the current rows is zeroed and columns 1..n are filled from the
// previous rows, exactly as two rowQuad sweeps would. With the SIMD
// tier overridden off, it IS two rowQuad sweeps.
func rowLanes(rowMask []uint8, priorMatch, priorMismatch float32,
	prevM, prevI, prevD, curM, curI, curD []float32, n int) {
	if f := cpufeat.Get(); !f.HasSSE2 && !f.HasNEON {
		rowQuad(rowMask, priorMatch, priorMismatch,
			&prevM[0], &prevI[0], &prevD[0], &curM[0], &curI[0], &curD[0], n, 0)
		rowQuad(rowMask, priorMatch, priorMismatch,
			&prevM[0], &prevI[0], &prevD[0], &curM[0], &curI[0], &curD[0], n, 4)
		return
	}
	a := rowArgs{
		pPM: &prevM[0], pPI: &prevI[0], pPD: &prevD[0],
		pCM: &curM[0], pCI: &curI[0], pCD: &curD[0],
		mask: &rowMask[0], tab: &blendTab[0][0], n: int64(n),
		prMatchM: priorMatch * tmm32, prMismM: priorMismatch * tmm32,
		prMatchG: priorMatch * tim32, prMismG: priorMismatch * tim32,
		tgo: tmi32, tge: tii32,
	}
	rowLanesAsm(&a)
}
