// Package phmm implements the Pairwise Hidden Markov Model kernel from
// GATK HaplotypeCaller: the forward-algorithm likelihood of a read
// given a candidate haplotype, computed with quality-dependent priors
// in single-precision floating point with a double-precision fallback
// when the 32-bit computation underflows — exactly the precision
// strategy the paper describes for phmm.
package phmm

import (
	"context"
	"math"

	"repro/internal/faultinject"
	"repro/internal/genome"
	"repro/internal/lanes"
	"repro/internal/parallel"
	"repro/internal/perf"
	"repro/internal/scratch"
)

// Transition probabilities follow GATK's defaults: gap-open quality 45
// for insertions and deletions, gap-continuation penalty 10.
var (
	gapOpen = math.Pow(10, -4.5) // P(match -> ins) = P(match -> del)
	gapExt  = math.Pow(10, -1)   // P(ins -> ins) = P(del -> del)

	tMM = 1 - 2*gapOpen
	tMI = gapOpen
	tMD = gapOpen
	tIM = 1 - gapExt
	tII = gapExt
	tDM = 1 - gapExt
	tDD = gapExt
)

// qualToErr[q] is the base error probability for Phred quality q.
var qualToErr [94]float64

func init() {
	for q := range qualToErr {
		qualToErr[q] = math.Pow(10, -float64(q)/10)
	}
}

// Float is the precision parameter of the forward computation.
type Float interface {
	~float32 | ~float64
}

// initialScale32 rescales the float32 computation away from the
// subnormal range, mirroring GATK's INITIAL_CONDITION.
const initialScale32 = float64(1<<62) * float64(1<<58) // 2^120

// underflowThreshold32 marks results too small to trust in float32.
const underflowThreshold32 = 1e-28

// forward runs the PairHMM forward algorithm in precision F and
// returns the raw (scaled) likelihood sum plus the number of DP cells
// computed.
func forward[F Float](read genome.Seq, qual []byte, hap genome.Seq, scale float64) (F, uint64) {
	var rows [6][]F
	return forwardInto(read, qual, hap, scale, &rows)
}

// forwardInto is forward computing into six caller-owned DP rows, each
// grown in place and reused across calls. The cur rows are fully
// overwritten every row; the prev rows are reinitialized here, so
// stale contents never leak into the recurrence.
func forwardInto[F Float](read genome.Seq, qual []byte, hap genome.Seq, scale float64, rows *[6][]F) (F, uint64) {
	m := len(read)
	n := len(hap)
	if m == 0 || n == 0 {
		return 0, 0
	}
	// Row-wise DP over the read; columns are haplotype positions.
	for k := range rows {
		rows[k] = scratch.Grow(rows[k], n+1)
	}
	curM, curI, curD := rows[0], rows[1], rows[2]
	prevM, prevI, prevD := rows[3], rows[4], rows[5]
	clear(prevM)
	clear(prevI)

	// Free start anywhere on the haplotype: D row 0 carries the scaled
	// initial mass.
	init := F(scale / float64(n))
	for j := 0; j <= n; j++ {
		prevD[j] = init
	}

	tmm := F(tMM)
	tmi := F(tMI)
	tmd := F(tMD)
	tim := F(tIM)
	tii := F(tII)
	tdm := F(tDM)
	tdd := F(tDD)

	var cells uint64
	for i := 1; i <= m; i++ {
		err := qualToErr[qual[i-1]]
		priorMatch := F(1 - err)
		priorMismatch := F(err / 3)
		rb := read[i-1]
		curM[0] = 0
		curI[0] = 0
		curD[0] = 0
		for j := 1; j <= n; j++ {
			cells++
			prior := priorMismatch
			if hap[j-1] == rb {
				prior = priorMatch
			}
			curM[j] = prior * (tmm*prevM[j-1] + tim*prevI[j-1] + tdm*prevD[j-1])
			curI[j] = tmi*prevM[j] + tii*prevI[j]
			curD[j] = tmd*curM[j-1] + tdd*curD[j-1]
		}
		prevM, curM = curM, prevM
		prevI, curI = curI, prevI
		prevD, curD = curD, prevD
	}
	// Free end on the haplotype: sum M and I across the last row.
	var sum F
	for j := 1; j <= n; j++ {
		sum += prevM[j] + prevI[j]
	}
	return sum, cells
}

// Result reports one read-haplotype likelihood evaluation.
type Result struct {
	Log10Likelihood float64
	UsedDouble      bool   // float32 underflowed; recomputed in float64
	CellUpdates     uint64 // includes any fallback recomputation
}

// Likelihood computes log10 P(read | haplotype), attempting float32
// first and falling back to float64 on underflow.
func Likelihood(read genome.Seq, qual []byte, hap genome.Seq) Result {
	if len(read) == 0 || len(hap) == 0 {
		return Result{Log10Likelihood: math.Inf(-1)}
	}
	sum32, cells := forward[float32](read, qual, hap, initialScale32)
	if s := float64(sum32); s > underflowThreshold32 && !math.IsInf(s, 0) {
		return Result{
			Log10Likelihood: math.Log10(s) - math.Log10(initialScale32),
			CellUpdates:     cells,
		}
	}
	const scale64 = 1e280
	sum64, cells64 := forward[float64](read, qual, hap, scale64)
	return Result{
		Log10Likelihood: math.Log10(sum64) - math.Log10(scale64),
		UsedDouble:      true,
		CellUpdates:     cells + cells64,
	}
}

// Scratch holds the grow-only working storage for pooled phmm
// evaluation: the six DP rows for each precision plus the per-region
// output slices. One Scratch per worker; not safe for concurrent use.
// Slices inside a RegionResult produced by EvaluateRegionInto remain
// valid only until the next call with the same Scratch.
type Scratch struct {
	rows32      [6][]float32
	rows64      [6][]float64
	bestHap     []int
	likelihoods []float64

	// Lane-batched state (lanes.go): grouped haplotype layouts, the
	// per-lane packed haplotype words, and the lane DP rows — flat
	// float32 with a stride of lanes.Width per column, swept four
	// lanes at a time (see forwardQuad).
	groups   []laneGroup
	packs    [lanes.Width][]uint64
	laneRows [6][]float32
}

// NewScratch returns an empty Scratch; buffers grow on first use.
func NewScratch() *Scratch { return &Scratch{} }

// LikelihoodInto is Likelihood using s's reusable DP rows. A nil s
// falls back to the allocating path. Results are bit-identical to
// Likelihood.
func LikelihoodInto(read genome.Seq, qual []byte, hap genome.Seq, s *Scratch) Result {
	if s == nil {
		return Likelihood(read, qual, hap)
	}
	if len(read) == 0 || len(hap) == 0 {
		return Result{Log10Likelihood: math.Inf(-1)}
	}
	sum32, cells := forwardInto(read, qual, hap, initialScale32, &s.rows32)
	if v := float64(sum32); v > underflowThreshold32 && !math.IsInf(v, 0) {
		return Result{
			Log10Likelihood: math.Log10(v) - math.Log10(initialScale32),
			CellUpdates:     cells,
		}
	}
	const scale64 = 1e280
	sum64, cells64 := forwardInto(read, qual, hap, scale64, &s.rows64)
	return Result{
		Log10Likelihood: math.Log10(sum64) - math.Log10(scale64),
		UsedDouble:      true,
		CellUpdates:     cells + cells64,
	}
}

// Region is one independent task: the reads aligned to a genome window
// and the candidate haplotypes assembled for it. The kernel evaluates
// all |R| x |H| pairs.
type Region struct {
	Reads []genome.Seq
	Quals [][]byte
	Haps  []genome.Seq
}

// RegionResult carries per-region outputs.
type RegionResult struct {
	// BestHap[r] is the index of the maximum-likelihood haplotype for
	// read r.
	BestHap []int
	// Likelihoods[r*|H|+h] is log10 P(read r | hap h).
	Likelihoods []float64
	CellUpdates uint64
	Fallbacks   int
}

// EvaluateRegion runs all pairwise alignments of one region.
func EvaluateRegion(rg *Region) RegionResult {
	return EvaluateRegionScalarInto(rg, nil)
}

// EvaluateRegionInto is EvaluateRegion computing into s's reusable
// storage; the returned slices are owned by s and valid until the next
// call. A nil s allocates fresh output slices. Regions with at least
// eight haplotypes take the lane-batched forward pass (lanes.go):
// results match the scalar reference within laneTolerance per
// likelihood (bit-identical on amd64) with exact cell counters.
func EvaluateRegionInto(rg *Region, s *Scratch) RegionResult {
	if s != nil && len(rg.Haps) >= lanes.Width {
		return evaluateRegionLanes(rg, s)
	}
	return EvaluateRegionScalarInto(rg, s)
}

// EvaluateRegionScalarInto is the scalar reference path: one forward
// pass per (read, haplotype) pair. It backs the lane path's
// differential tests and serves as the baseline side of the
// phmm/lanes benchmark pair.
func EvaluateRegionScalarInto(rg *Region, s *Scratch) RegionResult {
	nr, nh := len(rg.Reads), len(rg.Haps)
	var res RegionResult
	if s != nil {
		s.bestHap = scratch.Grow(s.bestHap, nr)
		s.likelihoods = scratch.Grow(s.likelihoods, nr*nh)
		res.BestHap = s.bestHap
		res.Likelihoods = s.likelihoods
		clear(res.BestHap)
	} else {
		res.BestHap = make([]int, nr)
		res.Likelihoods = make([]float64, nr*nh)
	}
	for r := 0; r < nr; r++ {
		best := math.Inf(-1)
		for h := 0; h < nh; h++ {
			lr := LikelihoodInto(rg.Reads[r], rg.Quals[r], rg.Haps[h], s)
			res.Likelihoods[r*nh+h] = lr.Log10Likelihood
			res.CellUpdates += lr.CellUpdates
			if lr.UsedDouble {
				res.Fallbacks++
			}
			if lr.Log10Likelihood > best {
				best = lr.Log10Likelihood
				res.BestHap[r] = h
			}
		}
	}
	return res
}

// KernelResult aggregates a phmm benchmark execution.
type KernelResult struct {
	Regions     int
	Pairs       int
	CellUpdates uint64
	Fallbacks   int
	TaskStats   *perf.TaskStats
	Counters    perf.Counters
}

// RunKernel evaluates all regions with dynamic scheduling; each region
// is one task, matching the paper's genome-region parallelism
// granularity for phmm. It panics on failure; cancellable callers use
// RunKernelCtx.
func RunKernel(regions []*Region, threads int) KernelResult {
	res, err := RunKernelCtx(context.Background(), regions, threads)
	if err != nil {
		panic(err)
	}
	return res
}

// RunKernelCtx is RunKernel with cooperative cancellation and a fault
// trip-point per region.
func RunKernelCtx(ctx context.Context, regions []*Region, threads int) (KernelResult, error) {
	if threads <= 0 {
		threads = 1
	}
	type ws struct {
		pairs     int
		cells     uint64
		fallbacks int
		stats     *perf.TaskStats
		scratch   *Scratch
		_         perf.CacheLinePad // workers update these per task; keep shards on private cache lines
	}
	workers := make([]ws, threads)
	pool := scratch.PoolFrom(ctx) // nil pool hands out fresh scratch
	for i := range workers {
		workers[i].stats = perf.NewTaskStats("cell updates")
		workers[i].scratch = pool.WorkerState(i, func() any { return NewScratch() }).(*Scratch)
	}
	// Active-region cost skews with read depth and haplotype count, so
	// the scheduler is the probed parallel.dispatch choice (shared
	// counter vs work stealing); results are policy-independent.
	err := parallel.ForEachDispatchErr(ctx, len(regions), threads, func(tctx context.Context, w, i int) error {
		if err := faultinject.Point(tctx); err != nil {
			return err
		}
		r := EvaluateRegionInto(regions[i], workers[w].scratch)
		workers[w].pairs += len(regions[i].Reads) * len(regions[i].Haps)
		workers[w].cells += r.CellUpdates
		workers[w].fallbacks += r.Fallbacks
		workers[w].stats.Observe(float64(r.CellUpdates))
		return nil
	})
	if err != nil {
		return KernelResult{}, err
	}
	res := KernelResult{Regions: len(regions), TaskStats: perf.NewTaskStats("cell updates")}
	for i := range workers {
		res.Pairs += workers[i].pairs
		res.CellUpdates += workers[i].cells
		res.Fallbacks += workers[i].fallbacks
		res.TaskStats.Merge(workers[i].stats)
	}
	// phmm is the suite's floating-point kernel: each cell is ~9 FP
	// multiply-adds, vectorized in the original.
	res.Counters.Add(perf.FloatOp, res.CellUpdates*3)
	res.Counters.Add(perf.VecOp, res.CellUpdates*6)
	res.Counters.Add(perf.Load, res.CellUpdates*2)
	res.Counters.Add(perf.Store, res.CellUpdates)
	res.Counters.Add(perf.Branch, res.CellUpdates/8)
	return res, nil
}
