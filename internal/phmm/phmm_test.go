package phmm

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/genome"
)

func uniformQual(n int, q byte) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = q
	}
	return out
}

func TestFloat32And64Agree(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		hap := genome.Random(rng, 60)
		read := hap[10:40].Clone()
		qual := uniformQual(len(read), 30)
		s32, _ := forward[float32](read, qual, hap, initialScale32)
		s64, _ := forward[float64](read, qual, hap, initialScale32)
		l32 := math.Log10(float64(s32))
		l64 := math.Log10(s64)
		if math.Abs(l32-l64) > 1e-3 {
			t.Fatalf("trial %d: log10 f32 %v vs f64 %v", trial, l32, l64)
		}
	}
}

func TestPerfectReadLikelihoodNearExpected(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	hap := genome.Random(rng, 100)
	read := hap[20:70].Clone()
	q := byte(30)
	res := Likelihood(read, uniformQual(len(read), q), hap)
	// A perfectly matching read: likelihood ~ (1/n) * prod(priorMatch * tMM)
	// summed over one dominant path.
	err := math.Pow(10, -3)
	want := -math.Log10(float64(len(hap))) +
		float64(len(read))*math.Log10((1-err)*tMM)
	if math.Abs(res.Log10Likelihood-want) > 0.1 {
		t.Errorf("perfect read log10 %v, want ~%v", res.Log10Likelihood, want)
	}
	if res.UsedDouble {
		t.Error("short perfect read should not need float64")
	}
}

func TestMismatchLowersLikelihood(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	hap := genome.Random(rng, 80)
	read := hap[10:60].Clone()
	qual := uniformQual(len(read), 30)
	perfect := Likelihood(read, qual, hap).Log10Likelihood
	mut := read.Clone()
	mut[25] = genome.Complement(mut[25])
	mutated := Likelihood(mut, qual, hap).Log10Likelihood
	if mutated >= perfect {
		t.Errorf("mismatch likelihood %v not below perfect %v", mutated, perfect)
	}
	// One high-quality mismatch costs roughly log10(err/3 / (1-err)) ≈ -3.6.
	drop := perfect - mutated
	if drop < 2 || drop > 5 {
		t.Errorf("single mismatch drop %v outside [2,5]", drop)
	}
}

func TestLowQualityMismatchCostsLess(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	hap := genome.Random(rng, 80)
	read := hap[10:60].Clone()
	mut := read.Clone()
	mut[25] = genome.Complement(mut[25])

	qualHigh := uniformQual(len(read), 40)
	qualLow := uniformQual(len(read), 40)
	qualLow[25] = 5 // basecaller flags the mismatching base as unreliable

	dropHigh := Likelihood(read, qualHigh, hap).Log10Likelihood -
		Likelihood(mut, qualHigh, hap).Log10Likelihood
	dropLow := Likelihood(read, qualLow, hap).Log10Likelihood -
		Likelihood(mut, qualLow, hap).Log10Likelihood
	if dropLow >= dropHigh {
		t.Errorf("low-quality mismatch drop %v not below high-quality %v", dropLow, dropHigh)
	}
}

func TestLongReadTriggersDoubleFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	// A very long read accumulates tiny probabilities that underflow
	// float32 even with scaling.
	hap := genome.Random(rng, 12000)
	read := hap[:10000].Clone()
	qual := uniformQual(len(read), 30)
	res := Likelihood(read, qual, hap)
	if !res.UsedDouble {
		t.Skip("float32 survived; fallback not exercised at this length")
	}
	if math.IsInf(res.Log10Likelihood, 0) || math.IsNaN(res.Log10Likelihood) {
		t.Errorf("fallback produced %v", res.Log10Likelihood)
	}
}

func TestReadPrefersTrueHaplotype(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	hapA := genome.Random(rng, 120)
	hapB := hapA.Clone()
	hapB[60] = genome.Complement(hapB[60])
	// Read sampled from hapB covering the variant.
	read := hapB[40:90].Clone()
	qual := uniformQual(len(read), 30)
	rg := &Region{
		Reads: []genome.Seq{read},
		Quals: [][]byte{qual},
		Haps:  []genome.Seq{hapA, hapB},
	}
	res := EvaluateRegion(rg)
	if res.BestHap[0] != 1 {
		t.Errorf("read assigned to hap %d, want 1 (likelihoods %v)", res.BestHap[0], res.Likelihoods)
	}
}

func TestEmptyInputs(t *testing.T) {
	res := Likelihood(nil, nil, genome.MustFromString("ACGT"))
	if !math.IsInf(res.Log10Likelihood, -1) {
		t.Error("empty read should have -Inf likelihood")
	}
}

func TestRunKernelConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	regions := make([]*Region, 6)
	for i := range regions {
		hap := genome.Random(rng, 100+rng.Intn(100))
		var rg Region
		rg.Haps = []genome.Seq{hap, hap.ReverseComplement()}
		for r := 0; r < 3+rng.Intn(3); r++ {
			start := rng.Intn(len(hap) - 40)
			rg.Reads = append(rg.Reads, hap[start:start+40])
			rg.Quals = append(rg.Quals, uniformQual(40, 30))
		}
		regions[i] = &rg
	}
	r1 := RunKernel(regions, 1)
	r4 := RunKernel(regions, 4)
	if r1.CellUpdates != r4.CellUpdates || r1.Pairs != r4.Pairs {
		t.Errorf("threading changed results: %+v vs %+v", r1, r4)
	}
	if r1.Regions != 6 || r1.TaskStats.Count() != 6 {
		t.Errorf("region bookkeeping wrong: %+v", r1)
	}
	if r1.Counters.Ops[1] == 0 { // FloatOp
		t.Error("phmm should count floating-point ops")
	}
}

func TestCellUpdatesCount(t *testing.T) {
	hap := genome.MustFromString("ACGTACGTAC")
	read := genome.MustFromString("ACGTA")
	res := Likelihood(read, uniformQual(5, 30), hap)
	if res.CellUpdates != 50 {
		t.Errorf("CellUpdates = %d, want 50", res.CellUpdates)
	}
}
