package phmm

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/genome"
)

// laneRegion builds a region with enough haplotypes to engage the
// lane path: nh >= 8, haplotypes derived from one base sequence (the
// realistic same-window shape), reads sampled from it.
func laneRegion(rng *rand.Rand, reads, haps int) *Region {
	hapLen := 100 + rng.Intn(120)
	base := genome.Random(rng, hapLen)
	rg := &Region{}
	for h := 0; h < haps; h++ {
		hap := base.Clone()
		for m := 0; m < h%5; m++ {
			hap[rng.Intn(len(hap))] = genome.Base(rng.Intn(4))
		}
		// Ragged lengths: some haplotypes carry a deletion tail.
		if h%3 == 2 {
			hap = hap[:len(hap)-rng.Intn(20)]
		}
		rg.Haps = append(rg.Haps, hap)
	}
	for r := 0; r < reads; r++ {
		m := 30 + rng.Intn(90)
		var read genome.Seq
		if rng.Intn(4) == 0 {
			// Unrelated read: drives the float32 underflow fallback.
			read = genome.Random(rng, m)
		} else {
			off := rng.Intn(hapLen - m)
			read = base[off : off+m].Clone()
			for k := 0; k < m/20+1; k++ {
				read[rng.Intn(m)] = genome.Base(rng.Intn(4))
			}
		}
		qual := make([]byte, m)
		for i := range qual {
			qual[i] = byte(10 + rng.Intn(40))
		}
		rg.Reads = append(rg.Reads, read)
		rg.Quals = append(rg.Quals, qual)
	}
	return rg
}

// The lane-batched region evaluation must match the scalar reference
// within laneTolerance per likelihood, with exact work counters and
// identical best-haplotype choices. Both fallback (float64) and
// ragged-tail lanes are exercised by the workload mix.
func TestEvaluateRegionLanesDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	s := NewScratch()
	sawFallback, sawRagged := false, false
	for trial := 0; trial < 25; trial++ {
		nh := 8 + rng.Intn(13) // covers multiples of 8 and ragged tails
		if nh%8 != 0 {
			sawRagged = true
		}
		rg := laneRegion(rng, 3+rng.Intn(6), nh)
		want := EvaluateRegionScalarInto(rg, nil)
		got := EvaluateRegionInto(rg, s)
		if got.CellUpdates != want.CellUpdates {
			t.Fatalf("trial %d: CellUpdates = %d, want %d (exact)", trial, got.CellUpdates, want.CellUpdates)
		}
		if got.Fallbacks != want.Fallbacks {
			t.Fatalf("trial %d: Fallbacks = %d, want %d", trial, got.Fallbacks, want.Fallbacks)
		}
		if want.Fallbacks > 0 {
			sawFallback = true
		}
		for i := range want.Likelihoods {
			g, w := got.Likelihoods[i], want.Likelihoods[i]
			if math.IsInf(w, -1) {
				if !math.IsInf(g, -1) {
					t.Fatalf("trial %d: Likelihoods[%d] = %v, want -Inf", trial, i, g)
				}
				continue
			}
			if math.Abs(g-w) > laneTolerance {
				t.Fatalf("trial %d: Likelihoods[%d] = %v, want %v (|diff| %g > %g)",
					trial, i, g, w, math.Abs(g-w), laneTolerance)
			}
		}
		for r := range want.BestHap {
			gh, wh := got.BestHap[r], want.BestHap[r]
			if gh == wh {
				continue
			}
			// The two paths may legitimately disagree only on a genuine
			// near-tie: two haplotypes whose scalar likelihoods sit within
			// the documented tolerance of each other (e.g. identical clones
			// split across the lane and scalar-tail paths). Anything wider
			// is a real argmax bug.
			gw := want.Likelihoods[r*nh+gh]
			ww := want.Likelihoods[r*nh+wh]
			if math.Abs(gw-ww) > laneTolerance {
				t.Fatalf("trial %d: BestHap[%d] = %d (ll %v), want %d (ll %v): not a near-tie",
					trial, r, gh, gw, wh, ww)
			}
		}
	}
	if !sawFallback {
		t.Fatal("workload never exercised the float64 underflow fallback")
	}
	if !sawRagged {
		t.Fatal("workload never exercised a ragged haplotype tail")
	}
}

// Degenerate inputs must behave exactly like the scalar path: empty
// reads and empty haplotypes yield -Inf with no fallback accounting.
func TestEvaluateRegionLanesDegenerate(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	rg := laneRegion(rng, 4, 9)
	rg.Haps[3] = nil                       // empty haplotype in a full group
	rg.Reads[1] = nil                      // empty read
	rg.Quals[1] = nil
	s := NewScratch()
	want := EvaluateRegionScalarInto(rg, nil)
	got := EvaluateRegionInto(rg, s)
	if got.CellUpdates != want.CellUpdates || got.Fallbacks != want.Fallbacks {
		t.Fatalf("counters: got (%d, %d), want (%d, %d)",
			got.CellUpdates, got.Fallbacks, want.CellUpdates, want.Fallbacks)
	}
	for i := range want.Likelihoods {
		g, w := got.Likelihoods[i], want.Likelihoods[i]
		if math.IsInf(w, -1) != math.IsInf(g, -1) {
			t.Fatalf("Likelihoods[%d] = %v, want %v", i, g, w)
		}
	}
}

// The lane path must preserve the steady-state zero-allocation
// invariant with a warm scratch.
func TestEvaluateRegionLanesZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	rg := laneRegion(rng, 6, 16)
	s := NewScratch()
	EvaluateRegionInto(rg, s) // warm
	n := testing.AllocsPerRun(20, func() {
		EvaluateRegionInto(rg, s)
	})
	if n != 0 {
		t.Fatalf("AllocsPerRun = %v, want 0", n)
	}
}

// Scalar versus lane-batched region evaluation: the bench harness's
// phmm/lanes before/after pair.
func BenchmarkEvaluateRegionLanes(b *testing.B) {
	rng := rand.New(rand.NewSource(24))
	rg := laneRegion(rng, 8, 16)
	b.Run("scalar", func(b *testing.B) {
		b.ReportAllocs()
		s := NewScratch()
		for i := 0; i < b.N; i++ {
			EvaluateRegionScalarInto(rg, s)
		}
	})
	b.Run("lanes", func(b *testing.B) {
		b.ReportAllocs()
		s := NewScratch()
		for i := 0; i < b.N; i++ {
			EvaluateRegionInto(rg, s)
		}
	})
}
