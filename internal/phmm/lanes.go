package phmm

// Lane-batched PairHMM forward pass: instead of one scalar DP per
// (read, haplotype) pair, a read's haplotypes are grouped into lanes
// of eight and one struct-of-arrays pass advances all eight forward
// recurrences together — the inter-task vectorization GATK's AVX
// PairHMM uses, expressed with internal/lanes Lane8 vectors.
//
// Layout: the M/I/D DP rows become []lanes.Lane8, lane l of column j
// holding haplotype l's state at position j. Haplotypes in a group
// are ragged; the group DP runs to the LONGEST haplotype and each
// lane's likelihood is read off at its own length. Columns past a
// lane's end compute garbage that provably never flows back (the
// recurrence only reads columns <= j) and is never summed (the final
// row is masked per lane to [1, len(hap_l)]).
//
// Emission priors are gathered from the haplotypes through the
// internal/seq2 2-bit packing: each group precomputes, per reference
// base b and column j, an 8-bit mask of which lanes match b, so the
// scalar core's per-cell `hap[j-1] == rb` branch becomes a branch-free
// Pick2 table select.
//
// Numerics: per-lane arithmetic follows the scalar expressions with
// two documented deviations — the M update factors the symmetric
// gap-continuation terms (tIM == tDM) and pre-multiplies the emission
// prior by the match transition, reassociating one addition and one
// multiplication per cell — so lane likelihoods agree with the scalar
// reference within laneTolerance rather than bit-for-bit (derivation
// at that constant). A consequence for the argmax: when two
// haplotypes' true likelihoods are closer than the tolerance (clones,
// or near-clones), BestHap may pick either of them; the differential
// tests pin BestHap exactly except on such near-ties. Lanes whose
// float32 sum underflows fall back to the scalar float64 pass,
// exactly like the scalar path, and ragged group tails (|H| mod 8)
// use the scalar float32 path unchanged.
//
// On amd64 the per-row update dispatches to an SSE2 assembly kernel
// (row_amd64.s), and on arm64 to a NEON kernel (row_arm64.s); both are
// bit-identical to the pure-Go quad sweeps — the portable path below
// is the reference they are tested against. To keep that contract on
// arm64, rowQuad is written fusion-free: every multiply feeding an add
// goes through an explicit float32 conversion, which the Go spec
// forbids the compiler from fusing into a single-rounding FMA. The
// conversions are no-ops on amd64.

import (
	"math"

	"repro/internal/genome"
	"repro/internal/lanes"
	"repro/internal/scratch"
	"repro/internal/seq2"
)

// laneTolerance is the documented bound on |lane - scalar| for one
// log10 likelihood. The lane M update computes pMd*(prior*tmm) +
// (pId+pDd)*(prior*tim) where the scalar reference computes
// prior*(tmm*pMd + tim*pId + tdm*pDd) (equal reals, different
// rounding): each cell perturbs the forward mass by at most a few
// float32 ulps relative (k·2^-24, k ≤ 3 reassociated roundings), and
// the perturbations compound across the read, giving |Δlog10| ≲
// 3m·2^-24/ln(10) ≈ 2e-5 for the longest supported reads (m ≈ 250).
// 1e-4 leaves almost an order of magnitude of slack over the
// estimate; the differential tests assert it on every workload.
const laneTolerance = 1e-4

// float32 transition constants, the same values forwardInto uses for
// F = float32.
var (
	tmm32 = float32(tMM)
	tmi32 = float32(tMI)
	tmd32 = float32(tMD)
	tim32 = float32(tIM)
	tii32 = float32(tII)
	tdm32 = float32(tDM)
	tdd32 = float32(tDD)
)

// laneGroup is the precomputed per-group haplotype layout: built once
// per region and reused by every read's lane pass.
type laneGroup struct {
	maxN int                   // longest haplotype in the group
	lens [lanes.Width]int      // per-lane haplotype lengths
	init lanes.Lane8           // per-lane scaled initial D mass
	mask [4][]uint8            // mask[b][j]: lanes whose hap[j] == b
	live []uint8               // live[j]: lanes with j <= len(hap_l)
}

// prepareGroups packs the region's full lane groups into s, reusing
// storage from earlier calls. Returns the number of full groups.
func prepareGroups(haps []genome.Seq, s *Scratch) int {
	nGroups := len(haps) / lanes.Width
	s.groups = scratch.Grow(s.groups, nGroups)
	for g := 0; g < nGroups; g++ {
		grp := &s.groups[g]
		members := haps[g*lanes.Width : (g+1)*lanes.Width]
		grp.maxN = 0
		var initArr [lanes.Width]float32
		for l, hap := range members {
			grp.lens[l] = len(hap)
			if len(hap) > grp.maxN {
				grp.maxN = len(hap)
			}
			if len(hap) > 0 {
				initArr[l] = float32(initialScale32 / float64(len(hap)))
			}
			// 2-bit pack the haplotype (the seq2 hot-path idiom); the
			// packed words drive the column mask build below.
			s.packs[l] = seq2.PackInto(s.packs[l], hap).WordsSlice()
		}
		grp.init = lanes.FromArray(initArr)
		for b := 0; b < 4; b++ {
			grp.mask[b] = scratch.Grow(grp.mask[b], grp.maxN)
			clear(grp.mask[b])
		}
		grp.live = scratch.Grow(grp.live, grp.maxN+1)
		for j := 0; j <= grp.maxN; j++ {
			var lm uint8
			for l := 0; l < lanes.Width; l++ {
				if j <= grp.lens[l] {
					lm |= 1 << uint(l)
				}
			}
			grp.live[j] = lm
		}
		for l := 0; l < lanes.Width; l++ {
			p := seq2.FromWords(s.packs[l], grp.lens[l])
			bit := uint8(1) << uint(l)
			for j := 0; j < grp.lens[l]; j++ {
				grp.mask[p.Get(j)][j] |= bit
			}
		}
	}
	return nGroups
}

// forwardLanes runs the float32 forward recurrence for all eight
// haplotypes of grp against one read, returning the per-lane scaled
// likelihood sums. Cell accounting is done by the caller (lane l's
// semantic work is len(read) * lens[l] cells, identical to the scalar
// pass), keeping the kernel's work counters exact.
//
// Each DP row is advanced by three register-blocked sweeps rather
// than one fused loop: a full Lane8 cell update keeps ~10 lane values
// live (~80 floats against amd64's sixteen float registers), which
// spills the carried DP state to the stack every column and erases
// the batching win. The split changes no expression — every sweep
// reads exactly the values the fused loop would have — so results
// stay bit-identical to the scalar reference on amd64:
//
//   - miRow (twice, one Quad half each): M and I have no
//     within-row dependency, so the sweep carries nothing across
//     columns; diagonal predecessors are re-loaded from the previous
//     row, which is L1-resident by construction.
//   - dRow (both halves fused): the D recurrence is a serial
//     multiply-add chain per lane, so one column costs a full
//     latency round-trip no matter the width; running the Lo and Hi
//     chains in one loop overlaps two independent chains while
//     carrying only four quads.
func forwardLanes(read genome.Seq, qual []byte, grp *laneGroup, rows *[6][]float32) lanes.Lane8 {
	m := len(read)
	n := grp.maxN
	if m == 0 || n == 0 {
		return lanes.Lane8{}
	}
	for k := range rows {
		rows[k] = scratch.Grow(rows[k], (n+1)*lanes.Width)
	}
	curM, curI, curD := rows[0], rows[1], rows[2]
	prevM, prevI, prevD := rows[3], rows[4], rows[5]
	var zeroL lanes.Lane8
	for j := 0; j <= n; j++ {
		o := j * lanes.Width
		lanes.Store8(prevM, o, zeroL)
		lanes.Store8(prevI, o, zeroL)
		// Free start anywhere on the haplotype: lane l carries its own
		// scaled initial mass on its own [0, len(hap_l)] columns.
		lanes.Store8(prevD, o, lanes.Blend(grp.live[j], grp.init, zeroL))
	}
	for i := 1; i <= m; i++ {
		err := qualToErr[qual[i-1]]
		priorMatch := float32(1 - err)
		priorMismatch := float32(err / 3)
		rowMask := grp.mask[read[i-1]&3][:n]
		rowLanes(rowMask, priorMatch, priorMismatch,
			prevM, prevI, prevD, curM, curI, curD, n)
		prevM, curM = curM, prevM
		prevI, curI = curI, prevI
		prevD, curD = curD, prevD
	}
	// Free end on the haplotype: sum M and I across each lane's own
	// final row span, in the scalar path's ascending-j order.
	var sumLo, sumHi, zero lanes.Quad
	for j := 1; j <= n; j++ {
		o := j * lanes.Width
		lb := uint32(grp.live[j])
		miLo := lanes.Load4(prevM, o).Add(lanes.Load4(prevI, o))
		miHi := lanes.Load4(prevM, o+4).Add(lanes.Load4(prevI, o+4))
		sumLo = sumLo.Add(lanes.Sel4(lb, miLo, zero))
		sumHi = sumHi.Add(lanes.Sel4(lb>>4, miHi, zero))
	}
	return lanes.Lane8{Lo: sumLo, Hi: sumHi}
}

// rowQuad advances the M, I and D rows for lanes [base, base+4) of
// one read position. Per-lane arithmetic replays the scalar expression
// in the scalar order (see the package comment's bit-compatibility
// contract). The loop carries only the D chain's two quads (eight
// floats) and re-loads diagonal predecessors from the L1-resident
// previous row, keeping the live set inside amd64's float registers;
// row accesses go through the unchecked Load4U/Store4U forms — the
// caller sized every row to (n+1)*lanes.Width, so offsets up to
// n*lanes.Width+base+3 are in bounds by construction.
// The recurrence exploits two identities of the transition model that
// the scalar reference leaves unexploited: gap-continuation is
// symmetric (tIM == tDM, so tim*pId + tdm*pDd factors to
// tim*(pId+pDd), one multiply instead of two), and the I and D
// updates share their coefficients (tMI == tMD, tII == tDD), which
// shrinks the loop's live constants to four transition scalars plus
// the two priors — small enough that nothing spills. The factoring
// reassociates one addition per cell, which is why the lane contract
// is laneTolerance rather than bit-identity (see that constant's
// derivation).
//
// Every a*b + c*d in this function is written with explicit float32
// conversions around the products (inline for the table-indexed M
// update, via Quad.ScaleAdd2 for the I/D updates). The conversions
// pin each product to a separate rounding, so the arm64 compiler may
// not fuse them into FMAs — this is what lets the NEON kernel in
// row_arm64.s (which rounds every product and sum separately) be
// bit-identical to this reference. On amd64 they are no-ops.
func rowQuad(rowMask []uint8, priorMatch, priorMismatch float32,
	pPM, pPI, pPD, pCM, pCI, pCD *float32, n, base int) {
	tgo, tge := tmi32, tii32
	// Prior tables with the M-update transition constants folded in:
	// prM[bit] = prior*tMM and prG[bit] = prior*tIM, indexed by the
	// provably in-range match bit. One AND plus two indexed loads per
	// lane replaces a bitwise float select plus two register-resident
	// constants — and those two registers are exactly what keeps the
	// carried DP state from spilling (the loop's live set is at the
	// amd64 float-register limit). Pre-multiplying rounds prior*t once
	// outside the loop, the second reassociation covered by the
	// laneTolerance derivation.
	prM := [2]float32{priorMismatch * tmm32, priorMatch * tmm32}
	prG := [2]float32{priorMismatch * tim32, priorMatch * tim32}
	var zero, lastM, lastD lanes.Quad
	lanes.Store4U(pCM, base, zero)
	lanes.Store4U(pCI, base, zero)
	lanes.Store4U(pCD, base, zero)
	// The sweep is unrolled two columns deep: column j+1's diagonal M/I
	// predecessors are exactly column j's straight-up loads, so the
	// unrolled pair reuses them from registers and skips a quarter of
	// the row loads on top of halving the loop overhead.
	// The only values carried across the loop backedge are the D
	// chain's two quads and the two shared gap constants — ten floats,
	// comfortably inside amd64's fifteen XMM registers. Diagonal M/I
	// predecessors are re-loaded at the top of each unrolled pair (the
	// row is L1-resident); carrying them instead was measured to push
	// the live set past the register file and spill the whole loop.
	o := lanes.Width + base
	j := 1
	for ; j+1 <= n; j += 2 {
		pM := lanes.Load4U(pPM, o-lanes.Width)
		pI := lanes.Load4U(pPI, o-lanes.Width)
		pDd := lanes.Load4U(pPD, o-lanes.Width)
		mb := uint32(rowMask[j-1]) >> base
		g := pI.Add(pDd)
		mj := lanes.Quad{
			A: float32(pM.A*prM[mb&1]) + float32(g.A*prG[mb&1]),
			B: float32(pM.B*prM[mb>>1&1]) + float32(g.B*prG[mb>>1&1]),
			C: float32(pM.C*prM[mb>>2&1]) + float32(g.C*prG[mb>>2&1]),
			D: float32(pM.D*prM[mb>>3&1]) + float32(g.D*prG[mb>>3&1]),
		}
		pM = lanes.Load4U(pPM, o)
		pI = lanes.Load4U(pPI, o)
		ij := pM.ScaleAdd2(tgo, pI, tge)
		dj := lastM.ScaleAdd2(tgo, lastD, tge)
		lanes.Store4U(pCM, o, mj)
		lanes.Store4U(pCI, o, ij)
		lanes.Store4U(pCD, o, dj)

		pDd2 := lanes.Load4U(pPD, o)
		mb2 := uint32(rowMask[j]) >> base
		g2 := pI.Add(pDd2)
		mj2 := lanes.Quad{
			A: float32(pM.A*prM[mb2&1]) + float32(g2.A*prG[mb2&1]),
			B: float32(pM.B*prM[mb2>>1&1]) + float32(g2.B*prG[mb2>>1&1]),
			C: float32(pM.C*prM[mb2>>2&1]) + float32(g2.C*prG[mb2>>2&1]),
			D: float32(pM.D*prM[mb2>>3&1]) + float32(g2.D*prG[mb2>>3&1]),
		}
		pM = lanes.Load4U(pPM, o+lanes.Width)
		pI = lanes.Load4U(pPI, o+lanes.Width)
		ij2 := pM.ScaleAdd2(tgo, pI, tge)
		dj2 := mj.ScaleAdd2(tgo, dj, tge)
		lanes.Store4U(pCM, o+lanes.Width, mj2)
		lanes.Store4U(pCI, o+lanes.Width, ij2)
		lanes.Store4U(pCD, o+lanes.Width, dj2)
		lastM, lastD = mj2, dj2
		o += 2 * lanes.Width
	}
	if j <= n {
		pM := lanes.Load4U(pPM, o-lanes.Width)
		pI := lanes.Load4U(pPI, o-lanes.Width)
		pDd := lanes.Load4U(pPD, o-lanes.Width)
		mb := uint32(rowMask[j-1]) >> base
		g := pI.Add(pDd)
		mj := lanes.Quad{
			A: float32(pM.A*prM[mb&1]) + float32(g.A*prG[mb&1]),
			B: float32(pM.B*prM[mb>>1&1]) + float32(g.B*prG[mb>>1&1]),
			C: float32(pM.C*prM[mb>>2&1]) + float32(g.C*prG[mb>>2&1]),
			D: float32(pM.D*prM[mb>>3&1]) + float32(g.D*prG[mb>>3&1]),
		}
		pM = lanes.Load4U(pPM, o)
		pI = lanes.Load4U(pPI, o)
		ij := pM.ScaleAdd2(tgo, pI, tge)
		dj := lastM.ScaleAdd2(tgo, lastD, tge)
		lanes.Store4U(pCM, o, mj)
		lanes.Store4U(pCI, o, ij)
		lanes.Store4U(pCD, o, dj)
	}
}

// evaluateRegionLanes is the lane-batched region evaluation: full
// groups of eight haplotypes per lane pass, the ragged tail and any
// underflowing lanes on the scalar paths. Caller guarantees s != nil
// and len(rg.Haps) >= lanes.Width.
func evaluateRegionLanes(rg *Region, s *Scratch) RegionResult {
	nr, nh := len(rg.Reads), len(rg.Haps)
	var res RegionResult
	s.bestHap = scratch.Grow(s.bestHap, nr)
	s.likelihoods = scratch.Grow(s.likelihoods, nr*nh)
	res.BestHap = s.bestHap
	res.Likelihoods = s.likelihoods
	clear(res.BestHap)
	nGroups := prepareGroups(rg.Haps, s)
	logScale32 := math.Log10(initialScale32)
	for r := 0; r < nr; r++ {
		read, qual := rg.Reads[r], rg.Quals[r]
		m := len(read)
		best := math.Inf(-1)
		for g := 0; g < nGroups; g++ {
			grp := &s.groups[g]
			var sums lanes.Lane8
			if m > 0 {
				sums = forwardLanes(read, qual, grp, &s.laneRows)
			}
			for l := 0; l < lanes.Width; l++ {
				h := g*lanes.Width + l
				nl := grp.lens[l]
				ll := math.Inf(-1)
				if m > 0 && nl > 0 {
					res.CellUpdates += uint64(m) * uint64(nl)
					if v := float64(sums.At(l)); v > underflowThreshold32 && !math.IsInf(v, 0) {
						ll = math.Log10(v) - logScale32
					} else {
						// float32 underflow: scalar float64 fallback,
						// identical to the scalar path's rescue.
						const scale64 = 1e280
						sum64, cells64 := forwardInto(read, qual, rg.Haps[h], scale64, &s.rows64)
						ll = math.Log10(sum64) - math.Log10(scale64)
						res.Fallbacks++
						res.CellUpdates += cells64
					}
				}
				res.Likelihoods[r*nh+h] = ll
				if ll > best {
					best = ll
					res.BestHap[r] = h
				}
			}
		}
		// Ragged tail: the scalar float32 path unchanged.
		for h := nGroups * lanes.Width; h < nh; h++ {
			lr := LikelihoodInto(read, qual, rg.Haps[h], s)
			res.Likelihoods[r*nh+h] = lr.Log10Likelihood
			res.CellUpdates += lr.CellUpdates
			if lr.UsedDouble {
				res.Fallbacks++
			}
			if lr.Log10Likelihood > best {
				best = lr.Log10Likelihood
				res.BestHap[r] = h
			}
		}
	}
	return res
}
