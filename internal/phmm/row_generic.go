//go:build !amd64 && !arm64

package phmm

// haveRowAsm reports whether rowLanes dispatches to an assembly
// kernel on this architecture.
const haveRowAsm = false

// rowLanes advances all eight lanes of one read position on the
// portable path: two register-blocked quad sweeps.
func rowLanes(rowMask []uint8, priorMatch, priorMismatch float32,
	prevM, prevI, prevD, curM, curI, curD []float32, n int) {
	rowQuad(rowMask, priorMatch, priorMismatch,
		&prevM[0], &prevI[0], &prevD[0], &curM[0], &curI[0], &curD[0], n, 0)
	rowQuad(rowMask, priorMatch, priorMismatch,
		&prevM[0], &prevI[0], &prevD[0], &curM[0], &curI[0], &curD[0], n, 4)
}
