package perf

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCountersAddTotal(t *testing.T) {
	var c Counters
	c.Add(IntALU, 10)
	c.Add(Load, 5)
	c.Add(Load, 5)
	if c.Total() != 20 {
		t.Errorf("Total = %d, want 20", c.Total())
	}
	if c.Ops[Load] != 10 {
		t.Errorf("Load = %d, want 10", c.Ops[Load])
	}
}

func TestCountersMerge(t *testing.T) {
	var a, b Counters
	a.Add(FloatOp, 3)
	b.Add(FloatOp, 4)
	b.Add(Branch, 1)
	a.Merge(&b)
	if a.Ops[FloatOp] != 7 || a.Ops[Branch] != 1 {
		t.Errorf("merge result %+v", a.Ops)
	}
}

func TestCountersFractionsSumToOne(t *testing.T) {
	f := func(vals [7]uint16) bool {
		var c Counters
		total := uint64(0)
		for i, v := range vals {
			c.Add(OpClass(i), uint64(v))
			total += uint64(v)
		}
		fr := c.Fractions()
		var sum float64
		for _, x := range fr {
			sum += x
		}
		if total == 0 {
			return sum == 0
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCountersReset(t *testing.T) {
	var c Counters
	c.Add(Other, 42)
	c.Reset()
	if c.Total() != 0 {
		t.Error("Reset did not zero counters")
	}
}

func TestOpClassString(t *testing.T) {
	if IntALU.String() != "int-alu" || VecOp.String() != "vector" {
		t.Error("OpClass names wrong")
	}
	if OpClass(99).String() != "OpClass(99)" {
		t.Error("out-of-range OpClass name wrong")
	}
}

func TestTaskStatsSummary(t *testing.T) {
	ts := NewTaskStats("cells")
	for _, w := range []float64{1, 2, 3, 4, 10} {
		ts.Observe(w)
	}
	s := ts.Summarize()
	if s.Count != 5 {
		t.Errorf("Count = %d", s.Count)
	}
	if s.Mean != 4 {
		t.Errorf("Mean = %v, want 4", s.Mean)
	}
	if s.Max != 10 || s.Min != 1 {
		t.Errorf("Max/Min = %v/%v", s.Max, s.Min)
	}
	if math.Abs(s.MaxToMean-2.5) > 1e-9 {
		t.Errorf("MaxToMean = %v, want 2.5", s.MaxToMean)
	}
	if s.P50 != 3 {
		t.Errorf("P50 = %v, want 3", s.P50)
	}
	if s.TotalWork != 20 {
		t.Errorf("TotalWork = %v, want 20", s.TotalWork)
	}
}

func TestTaskStatsEmpty(t *testing.T) {
	s := NewTaskStats("x").Summarize()
	if s.Count != 0 || s.Mean != 0 || s.MaxToMean != 0 {
		t.Errorf("empty summary nonzero: %+v", s)
	}
}

func TestTaskStatsMerge(t *testing.T) {
	a := NewTaskStats("x")
	b := NewTaskStats("x")
	a.Observe(1)
	b.Observe(3)
	a.Merge(b)
	s := a.Summarize()
	if s.Count != 2 || s.Mean != 2 {
		t.Errorf("merged summary %+v", s)
	}
}

func TestQuantileMonotone(t *testing.T) {
	ts := NewTaskStats("x")
	for i := 0; i < 100; i++ {
		ts.Observe(float64(i))
	}
	s := ts.Summarize()
	if !(s.P50 <= s.P90 && s.P90 <= s.P99 && s.P99 <= s.Max) {
		t.Errorf("quantiles not monotone: %+v", s)
	}
}

func TestTaskStatsMaxToMeanProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		ts := NewTaskStats("w")
		for _, r := range raw {
			ts.Observe(float64(r) + 1) // strictly positive
		}
		s := ts.Summarize()
		if len(raw) == 0 {
			return s.Count == 0
		}
		return s.MaxToMean >= 1 && s.Max >= s.Mean && s.Mean >= s.Min
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSparklineShapes(t *testing.T) {
	ts := NewTaskStats("w")
	if s := ts.Sparkline(8); s != "" {
		t.Errorf("empty stats sparkline %q", s)
	}
	// Uniform work: single filled bucket.
	for i := 0; i < 10; i++ {
		ts.Observe(5)
	}
	s := ts.Sparkline(8)
	if len([]rune(s)) != 8 {
		t.Fatalf("sparkline width %d", len([]rune(s)))
	}
	if []rune(s)[0] != '█' {
		t.Errorf("uniform distribution should fill the first bucket: %q", s)
	}
	// Heavy tail: first bucket tall, last bucket present.
	ts2 := NewTaskStats("w")
	for i := 0; i < 100; i++ {
		ts2.Observe(1)
	}
	ts2.Observe(1000)
	s2 := []rune(ts2.Sparkline(8))
	if s2[0] == ' ' || s2[len(s2)-1] == ' ' {
		t.Errorf("tail not visible in %q", string(s2))
	}
	if s2[0] <= s2[len(s2)-1] {
		t.Errorf("head should be taller than tail in %q", string(s2))
	}
}
