package perf

import (
	"runtime"
	"sync"
	"testing"
	"unsafe"
)

func TestCountersPaddedToCacheLine(t *testing.T) {
	size := unsafe.Sizeof(Counters{})
	if size%CacheLineSize != 0 {
		t.Fatalf("sizeof(Counters) = %d, want a multiple of %d so adjacent "+
			"per-worker counters cannot share a cache line", size, CacheLineSize)
	}
}

func TestCacheLinePadSize(t *testing.T) {
	if got := unsafe.Sizeof(CacheLinePad{}); got != CacheLineSize {
		t.Fatalf("sizeof(CacheLinePad) = %d, want %d", got, CacheLineSize)
	}
}

// unpaddedCounters is the pre-fix layout: 7 adjacent uint64s, so up to
// two workers' shards land on one 64-byte line.
type unpaddedCounters struct {
	Ops [7]uint64
}

const falseShareIters = 1 << 14

// hammerShards has each worker increment its own shard in a tight
// loop — the exact access pattern of kernels' per-worker op counters.
func hammerShards(b *testing.B, workers int, add func(worker int)) {
	b.Helper()
	for n := 0; n < b.N; n++ {
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func(w int) {
				defer wg.Done()
				for i := 0; i < falseShareIters; i++ {
					add(w)
				}
			}(w)
		}
		wg.Wait()
	}
}

// BenchmarkWorkerShardsUnpadded and BenchmarkWorkerShardsPadded
// demonstrate the false-sharing fix: with the unpadded layout adjacent
// workers' increments bounce the same cache line between cores, while
// the padded Counters keeps every worker on a private line. Compare:
//
//	go test ./internal/perf -bench WorkerShards -benchtime 2s
//
// On a multi-core host the padded variant is typically 2-6x faster at
// 4+ workers; on a single-core host the two converge (no coherence
// traffic to pay for).
// benchSink keeps the shard stores observable to the compiler.
var benchSink uint64

func BenchmarkWorkerShardsUnpadded(b *testing.B) {
	workers := runtime.GOMAXPROCS(0)
	shards := make([]unpaddedCounters, workers)
	b.SetBytes(falseShareIters)
	hammerShards(b, workers, func(w int) { shards[w].Ops[0]++ })
	benchSink += shards[0].Ops[0]
}

func BenchmarkWorkerShardsPadded(b *testing.B) {
	workers := runtime.GOMAXPROCS(0)
	shards := make([]Counters, workers)
	b.SetBytes(falseShareIters)
	hammerShards(b, workers, func(w int) { shards[w].Ops[0]++ })
	benchSink += shards[0].Ops[0]
}
