// Package perf provides the software instrumentation used to reproduce
// GenomicsBench's characterization experiments: semantic operation
// counters standing in for the MICA pintool's dynamic instruction mix
// (paper Figure 5) and per-task work-distribution statistics standing in
// for the task imbalance study (paper Figure 4).
//
// Kernels increment counters from their inner loops. The counters are
// plain uint64 fields so single-threaded instrumented runs add only an
// increment per counted operation; multi-threaded runs use one Counters
// value per worker and merge at the end.
package perf

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// OpClass is a semantic operation category mirroring the instruction
// classes in the paper's Figure 5.
type OpClass int

// Operation classes.
const (
	IntALU  OpClass = iota // scalar integer arithmetic/logic
	FloatOp                // scalar floating point
	VecOp                  // vector (lock-step batch) operations
	Load                   // memory reads
	Store                  // memory writes
	Branch                 // conditional control flow
	Other                  // string/system/sync/etc.
	numOpClasses
)

var opClassNames = [...]string{"int-alu", "float", "vector", "load", "store", "branch", "other"}

func (c OpClass) String() string {
	if c < 0 || int(c) >= len(opClassNames) {
		return fmt.Sprintf("OpClass(%d)", int(c))
	}
	return opClassNames[c]
}

// CacheLineSize is the assumed coherence granularity. 64 bytes is
// correct for every x86 and most arm64 parts; a wrong guess only
// costs padding, never correctness.
const CacheLineSize = 64

// CacheLinePad is a full cache line of padding. Embed it (as a blank
// field) at the end of per-worker accumulator structs stored in a
// contiguous slice: it guarantees no two workers' hot fields share a
// line, whatever the struct's size or the slice's base alignment.
type CacheLinePad struct{ _ [CacheLineSize]byte }

// Counters accumulates operation counts for one execution context.
// The zero value is ready to use.
//
// The struct is padded so its size is a multiple of the cache line:
// multi-threaded kernels keep one Counters per worker in a contiguous
// slice, and without the padding adjacent workers' uint64 increments
// false-share cache lines, quietly inflating multi-threaded op-mix
// timings (see BenchmarkWorkerShardsPadded for the measured effect).
type Counters struct {
	Ops [numOpClasses]uint64
	_   [CacheLineSize - (numOpClasses*8)%CacheLineSize]byte
}

// Add increments a class by n.
func (c *Counters) Add(class OpClass, n uint64) { c.Ops[class] += n }

// Merge adds other's counts into c.
func (c *Counters) Merge(other *Counters) {
	for i := range c.Ops {
		c.Ops[i] += other.Ops[i]
	}
}

// Total returns the total operation count across all classes.
func (c *Counters) Total() uint64 {
	var t uint64
	for _, v := range c.Ops {
		t += v
	}
	return t
}

// Reset zeroes all counters.
func (c *Counters) Reset() { *c = Counters{} }

// Fractions returns each class's share of the total, or all zeros when no
// operations were counted.
func (c *Counters) Fractions() [numOpClasses]float64 {
	var out [numOpClasses]float64
	total := c.Total()
	if total == 0 {
		return out
	}
	for i, v := range c.Ops {
		out[i] = float64(v) / float64(total)
	}
	return out
}

// String renders the counters as a compact single-line report.
func (c *Counters) String() string {
	var b strings.Builder
	total := c.Total()
	fmt.Fprintf(&b, "total=%d", total)
	for i, v := range c.Ops {
		if v > 0 {
			fmt.Fprintf(&b, " %s=%.1f%%", OpClass(i), 100*float64(v)/float64(total))
		}
	}
	return b.String()
}

// NumOpClasses reports how many operation classes exist.
func NumOpClasses() int { return int(numOpClasses) }

// TaskStats records the amount of data-parallel work performed by each
// independent task of a kernel (cell updates, table lookups, ...). It
// backs the paper's Figure 4 imbalance analysis.
type TaskStats struct {
	Unit string // what one work item is, e.g. "cell updates"
	work []float64
}

// NewTaskStats creates an empty distribution with the given work unit.
func NewTaskStats(unit string) *TaskStats { return &TaskStats{Unit: unit} }

// Observe records the work performed by one task.
func (t *TaskStats) Observe(work float64) { t.work = append(t.work, work) }

// Merge appends all observations from other.
func (t *TaskStats) Merge(other *TaskStats) { t.work = append(t.work, other.work...) }

// Count reports the number of tasks observed.
func (t *TaskStats) Count() int { return len(t.work) }

// Summary holds distribution statistics for a task-work distribution.
type Summary struct {
	Count              int
	Mean, Max, Min     float64
	P50, P90, P99      float64
	MaxToMean          float64 // the paper's imbalance ratio
	CoeffOfVariation   float64
	TotalWork          float64
	FracTasksAboveMean float64
}

// Summarize computes distribution statistics. It returns a zero Summary
// when no tasks were observed.
func (t *TaskStats) Summarize() Summary {
	n := len(t.work)
	if n == 0 {
		return Summary{}
	}
	sorted := append([]float64(nil), t.work...)
	sort.Float64s(sorted)
	var sum float64
	for _, w := range sorted {
		sum += w
	}
	mean := sum / float64(n)
	var varSum float64
	above := 0
	for _, w := range sorted {
		d := w - mean
		varSum += d * d
		if w > mean {
			above++
		}
	}
	s := Summary{
		Count:              n,
		Mean:               mean,
		Min:                sorted[0],
		Max:                sorted[n-1],
		P50:                quantile(sorted, 0.50),
		P90:                quantile(sorted, 0.90),
		P99:                quantile(sorted, 0.99),
		TotalWork:          sum,
		FracTasksAboveMean: float64(above) / float64(n),
	}
	if mean > 0 {
		s.MaxToMean = s.Max / mean
		s.CoeffOfVariation = math.Sqrt(varSum/float64(n)) / mean
	}
	return s
}

// quantile returns the q-quantile of an ascending-sorted slice using
// nearest-rank interpolation.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// String renders the distribution summary on one line.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.3g max=%.3g max/mean=%.2fx p99=%.3g cv=%.2f",
		s.Count, s.Mean, s.Max, s.MaxToMean, s.P99, s.CoeffOfVariation)
}

// sparkRunes are the eight block heights of a text sparkline.
var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders the work distribution as a width-bucket histogram
// sparkline on a log-count scale — a one-cell visualization of the
// paper's Figure 4 scatter.
func (t *TaskStats) Sparkline(width int) string {
	if width <= 0 {
		width = 16
	}
	if len(t.work) == 0 {
		return ""
	}
	lo, hi := t.work[0], t.work[0]
	for _, w := range t.work {
		if w < lo {
			lo = w
		}
		if w > hi {
			hi = w
		}
	}
	buckets := make([]int, width)
	span := hi - lo
	for _, w := range t.work {
		idx := 0
		if span > 0 {
			idx = int((w - lo) / span * float64(width-1))
		}
		buckets[idx]++
	}
	maxCount := 0
	for _, c := range buckets {
		if c > maxCount {
			maxCount = c
		}
	}
	out := make([]rune, width)
	for i, c := range buckets {
		if c == 0 {
			out[i] = ' '
			continue
		}
		// Log scale keeps rare heavy tails visible.
		level := math.Log1p(float64(c)) / math.Log1p(float64(maxCount))
		r := int(level * float64(len(sparkRunes)-1))
		out[i] = sparkRunes[r]
	}
	return string(out)
}
