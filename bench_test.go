package repro

// One benchmark per table and figure of the paper's evaluation section,
// plus per-kernel benchmarks and the ablations DESIGN.md calls out.
// Regenerate everything with:
//
//	go test -bench=. -benchmem
//
// The printed tables come from `go run ./cmd/gbench-tables`; these
// benchmarks time the regeneration paths and the kernels themselves.

import (
	"math/rand"
	"testing"

	"repro/internal/bsw"
	"repro/internal/core"
	"repro/internal/fmindex"
	"repro/internal/genome"
	"repro/internal/grm"
	"repro/internal/kmercnt"
	"repro/internal/nn"
	"repro/internal/nnbase"
	"repro/internal/readsim"
)

const benchSeed = 42

// ---- Tables ----

func BenchmarkTableI_Config(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if core.TableI() == nil {
			b.Fatal("nil table")
		}
	}
}

func BenchmarkTableII_Overview(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(core.TableII().Rows) != 12 {
			b.Fatal("bad table")
		}
	}
}

func BenchmarkTableIII_Granularity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		core.TableIII(core.Small, benchSeed)
	}
}

func BenchmarkTableIV_GPUControl(b *testing.B) {
	for i := 0; i < b.N; i++ {
		core.TableIV(benchSeed)
	}
}

func BenchmarkTableV_GPUMemory(b *testing.B) {
	for i := 0; i < b.N; i++ {
		core.TableV(benchSeed)
	}
}

func BenchmarkVectorWaste(b *testing.B) {
	for i := 0; i < b.N; i++ {
		core.VectorWaste(benchSeed)
	}
}

// ---- Figures ----

func BenchmarkFig4_Imbalance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		core.Fig4(core.Small, benchSeed)
	}
}

func BenchmarkFig5_InstMix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		core.Fig5(core.Small, benchSeed)
	}
}

func BenchmarkFig6_BPKI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		core.Fig6(benchSeed)
	}
}

func BenchmarkFig7_Scaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		core.Fig7(core.Small, benchSeed, []int{1, 2})
	}
}

func BenchmarkFig8_Cache(b *testing.B) {
	for i := 0; i < b.N; i++ {
		core.Fig8(benchSeed)
	}
}

func BenchmarkFig9_TopDown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		core.Fig9(benchSeed)
	}
}

func BenchmarkCacheSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		core.CacheSweepTable(benchSeed)
	}
}

// ---- Per-kernel benchmarks (small inputs, single thread) ----

func BenchmarkKernel(b *testing.B) {
	for _, bench := range core.Benchmarks() {
		bench := bench
		b.Run(bench.Info().Name, func(b *testing.B) {
			bench.Prepare(core.Small, benchSeed)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				bench.Run(1)
			}
		})
	}
}

// ---- Ablations (design choices DESIGN.md calls out) ----

// Banded versus full Smith-Waterman: the banding design choice.
func BenchmarkAblationBSWBand(b *testing.B) {
	rng := rand.New(rand.NewSource(benchSeed))
	q := genome.Random(rng, 500)
	t := q.Clone()
	for i := 0; i < 25; i++ {
		t[rng.Intn(len(t))] = genome.Base(rng.Intn(4))
	}
	for _, band := range []int{10, 50, 100, 1000} {
		p := bsw.DefaultParams()
		p.Band = band
		p.Mode = bsw.Local
		p.ZDrop = 0
		b.Run(bandName(band), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				bsw.Align(q, t, p)
			}
		})
	}
}

func bandName(band int) string {
	switch band {
	case 1000:
		return "full"
	case 10:
		return "band10"
	case 50:
		return "band50"
	default:
		return "band100"
	}
}

// Robin-hood versus linear probing: the paper's suggested kmer-cnt
// optimization.
func BenchmarkAblationKmerProbing(b *testing.B) {
	rng := rand.New(rand.NewSource(benchSeed))
	reads := make([]genome.Seq, 50)
	for i := range reads {
		reads[i] = genome.Random(rng, 2000)
	}
	for _, mode := range []kmercnt.Probing{kmercnt.Linear, kmercnt.RobinHood} {
		name := "linear"
		if mode == kmercnt.RobinHood {
			name = "robinhood"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tab := kmercnt.NewTable(1<<12, mode)
				for _, r := range reads {
					kmercnt.CountSeq(tab, r, 17)
				}
			}
		})
	}
}

// Plain versus prefetch-batched k-mer counting: the paper's suggested
// mitigation for kmer-cnt's memory stalls.
func BenchmarkAblationKmerBatching(b *testing.B) {
	rng := rand.New(rand.NewSource(benchSeed))
	reads := make([]genome.Seq, 50)
	for i := range reads {
		reads[i] = genome.Random(rng, 2000)
	}
	b.Run("plain", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tab := kmercnt.NewTable(1<<12, kmercnt.Linear)
			for _, r := range reads {
				kmercnt.CountSeq(tab, r, 17)
			}
		}
	})
	b.Run("batched", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tab := kmercnt.NewTable(1<<12, kmercnt.Linear)
			for _, r := range reads {
				kmercnt.CountSeqBatched(tab, r, 17)
			}
		}
	})
}

// Greedy versus beam CTC decoding in the basecaller.
func BenchmarkAblationCTCDecode(b *testing.B) {
	rng := rand.New(rand.NewSource(benchSeed))
	probs := nn.RandomTensor(rng, 400, 5, 1)
	probs.Softmax()
	b.Run("greedy", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			nn.CTCGreedyDecode(probs)
		}
	})
	b.Run("beam8", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			nn.CTCBeamDecode(probs, 8)
		}
	})
}

// Float32 versus int8-quantized dense inference (Bonito ships
// quantized models).
func BenchmarkAblationQuantizedDense(b *testing.B) {
	rng := rand.New(rand.NewSource(benchSeed))
	d := nn.NewDense(rng, 256, 128, nn.ReLU, "fc")
	q := d.Quantize()
	x := nn.RandomTensor(rng, 64, 256, 1)
	b.Run("float32", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			d.Forward(x)
		}
	})
	b.Run("int8", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			q.Forward(x)
		}
	})
}

// Inter-sequence batch width: SIMD lane-count trade-off for bsw.
func BenchmarkAblationBSWLanes(b *testing.B) {
	rng := rand.New(rand.NewSource(benchSeed))
	ref := genome.Random(rng, 50_000)
	pairs := make([]bsw.Pair, 64)
	for i := range pairs {
		n := 80 + rng.Intn(120)
		start := rng.Intn(len(ref) - n - 40)
		pairs[i] = bsw.Pair{Query: ref[start : start+n], Target: ref[start : start+n+40]}
	}
	p := bsw.DefaultParams()
	for _, lanes := range []int{4, 8, 16} {
		lanes := lanes
		b.Run(laneName(lanes), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				bsw.AlignBatch(pairs, p, lanes)
			}
		})
	}
}

func laneName(lanes int) string {
	switch lanes {
	case 4:
		return "lanes4"
	case 8:
		return "lanes8"
	default:
		return "lanes16"
	}
}

// Blocked versus naive GRM computation.
func BenchmarkAblationGRMBlocking(b *testing.B) {
	rng := rand.New(rand.NewSource(benchSeed))
	g := grm.Simulate(rng, 120, 2000, 0.1)
	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			grm.ComputeNaive(g)
		}
	})
	b.Run("blocked", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			grm.Compute(g, 64, 1)
		}
	})
}

// FM-index construction: SA-IS plus BWT/Occ build cost.
func BenchmarkFMIndexBuild(b *testing.B) {
	rng := rand.New(rand.NewSource(benchSeed))
	g := genome.Random(rng, 100_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fmindex.Build(g)
	}
}

// End-to-end basecalling throughput (samples/sec in bytes metric).
func BenchmarkBasecall(b *testing.B) {
	cfg := nnbase.DefaultConfig()
	cfg.Channels = 16
	cfg.Blocks = 2
	m := nnbase.NewModel(benchSeed, cfg)
	rng := rand.New(rand.NewSource(benchSeed))
	signal := make([]float32, nnbase.ChunkSize)
	for i := range signal {
		signal[i] = float32(rng.NormFloat64())
	}
	b.SetBytes(nnbase.ChunkSize * 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Basecall(signal, cfg)
	}
}

// Read simulation throughput, the suite's dataset generator.
func BenchmarkReadSimulation(b *testing.B) {
	rng := rand.New(rand.NewSource(benchSeed))
	ref := genome.NewReference(rng, "chr", 100_000, 0.1)
	sim := readsim.New(benchSeed)
	cfg := readsim.DefaultShort()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.ShortReads(ref.Seq, -1, 100, cfg, "r")
	}
}

// Occ-checkpoint spacing: denser checkpoints shorten the per-lookup
// block scan at a memory cost — BWA-MEM2's index layout knob.
func BenchmarkAblationFMIOccRate(b *testing.B) {
	rng := rand.New(rand.NewSource(benchSeed))
	g := genome.Random(rng, 50_000)
	reads := make([]genome.Seq, 100)
	for i := range reads {
		start := rng.Intn(len(g) - 120)
		reads[i] = g[start : start+120]
	}
	for _, rate := range []int{16, 64, 256} {
		idx := fmindex.BuildWithOptions(g, fmindex.Options{OccRate: rate, SARate: 32})
		name := map[int]string{16: "occ16", 64: "occ64", 256: "occ256"}[rate]
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, r := range reads {
					idx.FindSMEMs(r, 19, 1, nil)
				}
			}
		})
	}
}
