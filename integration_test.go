package repro

// Integration tests: full pipelines crossing module boundaries, run on
// small seeded datasets with quantitative accuracy assertions. These
// mirror the runnable examples but fail loudly on regressions.

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/abea"
	"repro/internal/bqsr"
	"repro/internal/bsw"
	"repro/internal/chain"
	"repro/internal/dbg"
	"repro/internal/fmindex"
	"repro/internal/genome"
	"repro/internal/markdup"
	"repro/internal/nnbase"
	"repro/internal/nnvariant"
	"repro/internal/phmm"
	"repro/internal/pileup"
	"repro/internal/poa"
	"repro/internal/readsim"
	"repro/internal/signalsim"
	"repro/internal/simio"
)

func TestPipelineShortReadAlignment(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ref := genome.NewReference(rng, "chr", 50_000, 0.05)
	index := fmindex.Build(ref.Seq)
	sim := readsim.New(2)
	reads := sim.ShortReads(ref.Seq, -1, 100, readsim.DefaultShort(), "r")

	params := bsw.DefaultParams()
	correct := 0
	for _, read := range reads {
		smems := index.FindSMEMs(read.Seq, 19, 1, nil)
		if len(smems) == 0 {
			continue
		}
		best := smems[0]
		for _, m := range smems[1:] {
			if m.Len() > best.Len() {
				best = m
			}
		}
		positions := index.LocateAll(read.Seq[best.QBeg:best.QEnd], 2)
		if len(positions) == 0 {
			continue
		}
		pos := positions[0]
		query := read.Seq
		offset := best.QBeg
		if pos >= len(ref.Seq) {
			pos = 2*len(ref.Seq) - pos - best.Len()
			query = read.Seq.ReverseComplement()
			offset = len(read.Seq) - best.QEnd
		}
		start := pos - offset - 5
		if start < 0 {
			start = 0
		}
		end := start + len(query) + 10
		if end > len(ref.Seq) {
			end = len(ref.Seq)
		}
		res := bsw.AlignTrace(query, ref.Seq[start:end], params)
		if res.Score < len(query)/2 {
			continue
		}
		if d := start - read.RefPos; d > -20 && d < 20 {
			correct++
		}
	}
	if correct < 80 {
		t.Errorf("only %d/100 reads aligned near their origin", correct)
	}
}

func TestPipelineVariantCallingWithVCF(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const refLen = 12_000
	const regionSize = 400
	ref := genome.NewReference(rng, "chr22", refLen, 0)
	donor := genome.PlantVariants(rng, ref, 0.002, 0.0002)
	sim := readsim.New(4)
	cfg := readsim.DefaultShort()
	cfg.Length = 100
	reads := sim.CoverageReads(donor, 35, cfg, "rd")

	nRegions := refLen / regionSize
	regionReads := make([][]genome.Seq, nRegions)
	regionQuals := make([][][]byte, nRegions)
	for _, r := range reads {
		rg := r.RefPos / regionSize
		if rg >= nRegions {
			rg = nRegions - 1
		}
		seq := r.Seq
		if r.Reverse {
			seq = seq.ReverseComplement()
		}
		regionReads[rg] = append(regionReads[rg], seq)
		regionQuals[rg] = append(regionQuals[rg], r.Qual)
	}

	var calls []simio.VCFRecord
	calledRegions := map[int]bool{}
	for rg := 0; rg < nRegions; rg++ {
		start := rg * regionSize
		region := &dbg.Region{Ref: ref.Seq[start : start+regionSize], Reads: regionReads[rg]}
		asm := dbg.AssembleRegion(region, dbg.DefaultConfig())
		if len(asm.Haplotypes) < 2 {
			continue
		}
		ph := &phmm.Region{Reads: regionReads[rg], Quals: regionQuals[rg], Haps: asm.Haplotypes}
		res := phmm.EvaluateRegion(ph)
		support := make([]int, len(asm.Haplotypes))
		for _, h := range res.BestHap {
			support[h]++
		}
		refIdx := -1
		for h, hap := range asm.Haplotypes {
			if hap.Equal(region.Ref) {
				refIdx = h
			}
		}
		for h, s := range support {
			if h != refIdx && s >= len(ph.Reads)/5 {
				calledRegions[rg] = true
				gt := simio.Het
				if refIdx >= 0 && support[refIdx] < len(ph.Reads)/10 {
					gt = simio.HomAlt
				}
				calls = append(calls, simio.VCFRecord{
					Chrom: "chr22", Pos: start,
					Ref:  region.Ref[:1],
					Alt:  asm.Haplotypes[h][:1],
					Qual: float64(s), Genotype: gt,
				})
				break
			}
		}
	}

	var recovered int
	for _, v := range donor.Variants {
		if calledRegions[v.Pos/regionSize] {
			recovered++
		}
	}
	recall := float64(recovered) / float64(len(donor.Variants))
	if recall < 0.5 {
		t.Errorf("recall %.2f below 0.5 (%d/%d variants)", recall, recovered, len(donor.Variants))
	}

	// The calls must survive a VCF round trip.
	var buf bytes.Buffer
	if err := simio.WriteVCF(&buf, "donor", calls); err != nil {
		t.Fatal(err)
	}
	back, err := simio.ReadVCF(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(calls) {
		t.Errorf("VCF round trip lost records: %d -> %d", len(calls), len(back))
	}
}

func TestPipelineOverlapDetection(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	src := genome.NewReference(rng, "asm", 30_000, 0.05)
	sim := readsim.New(6)
	cfg := readsim.DefaultLong()
	cfg.MeanLength = 5000
	cfg.ErrorRate = 0.08
	reads := sim.LongReads(src.Seq, -1, 24, cfg, "lr")

	var tp, fp, fn int
	for i := 0; i < len(reads); i++ {
		for j := i + 1; j < len(reads); j++ {
			a, b := reads[i], reads[j]
			if a.Reverse || b.Reverse {
				continue
			}
			trueOv := overlap(a.RefPos, a.RefEnd, b.RefPos, b.RefEnd)
			anchors := chain.SharedAnchors(a.Seq, b.Seq, 15, 10, 100)
			chains, _ := chain.ChainAnchors(anchors, chain.DefaultConfig())
			found := len(chains) > 0
			switch {
			case found && trueOv > 1000:
				tp++
			case found && trueOv == 0:
				fp++
			case !found && trueOv > 2000:
				fn++
			}
		}
	}
	if tp == 0 {
		t.Fatal("no true overlaps detected")
	}
	if fp > tp/4 {
		t.Errorf("too many false overlaps: tp=%d fp=%d", tp, fp)
	}
	if fn > tp {
		t.Errorf("missing too many overlaps: tp=%d fn=%d", tp, fn)
	}
}

func overlap(a0, a1, b0, b1 int) int {
	lo, hi := a0, a1
	if b0 > lo {
		lo = b0
	}
	if b1 < hi {
		hi = b1
	}
	if hi < lo {
		return 0
	}
	return hi - lo
}

func TestPipelinePolishingImprovesConsensus(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	truth := genome.Random(rng, 250)
	w := &poa.Window{}
	var worst int
	for r := 0; r < 10; r++ {
		read := truth.Clone()
		for m := 0; m < 12; m++ {
			switch rng.Intn(3) {
			case 0:
				read[rng.Intn(len(read))] = genome.Base(rng.Intn(4))
			case 1:
				p := rng.Intn(len(read))
				read = append(read[:p], read[p+1:]...)
			default:
				p := rng.Intn(len(read))
				read = append(read[:p], append(genome.Seq{genome.Base(rng.Intn(4))}, read[p:]...)...)
			}
		}
		w.Sequences = append(w.Sequences, read)
		if e := nnbase.EditDistance(read, truth); e > worst {
			worst = e
		}
	}
	cons, _ := poa.ConsensusOf(w, poa.DefaultParams())
	after := nnbase.EditDistance(cons, truth)
	if after >= worst {
		t.Errorf("consensus edit distance %d not below worst read %d", after, worst)
	}
	if after > 8 {
		t.Errorf("consensus edit distance %d too high for 10x coverage", after)
	}
}

func TestPipelinePileupToVariantTensor(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	ref := genome.NewReference(rng, "chr", 5_000, 0)
	// Plant a het SNV and simulate aligned reads around it.
	alt := ref.Seq.Clone()
	alt[2500] = genome.Complement(alt[2500])
	cfg := simio.AlignSimConfig{MeanReadLen: 400, SubRate: 0.005, InsRate: 0.002, DelRate: 0.002, MeanQual: 30, RefName: "chr"}
	alns := simio.SimulateAlignments(rng, ref.Seq, 60, cfg)
	alns = append(alns, simio.SimulateAlignments(rng, alt, 60, cfg)...)
	regions := pileup.SplitRegions(5000, alns, 5000)
	counts, _ := pileup.CountRegion(regions[0])
	// The SNV position must show mixed support.
	c := &counts[2500]
	refBase := ref.Seq[2500]
	altBase := alt[2500]
	refSupport := c.Base[0][refBase] + c.Base[1][refBase]
	altSupport := c.Base[0][altBase] + c.Base[1][altBase]
	if refSupport == 0 || altSupport == 0 {
		t.Fatalf("het site lacks mixed support: ref %d alt %d (depth %d)", refSupport, altSupport, c.Depth())
	}
}

func TestPipelineSignalToEventsToAlignment(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	pore := signalsim.NewPoreModel()
	seq := genome.Random(rng, 600)
	events := signalsim.Simulate(rng, pore, seq, signalsim.DefaultConfig())
	right := abea.Align(pore, seq, events, abea.DefaultConfig())
	if right.OutOfBand {
		t.Fatal("alignment fell out of band")
	}
	wrong := abea.Align(pore, genome.Random(rng, 600), events, abea.DefaultConfig())
	if right.Score <= wrong.Score {
		t.Errorf("true sequence %f not preferred over random %f", right.Score, wrong.Score)
	}

	// Methylation detection end to end.
	meth := abea.MethylatedModel(pore)
	cpg := seq.Clone()
	cpg[100], cpg[101] = genome.C, genome.G
	simCfg := signalsim.DefaultConfig()
	simCfg.NoiseScale = 0.5
	evMeth := signalsim.Simulate(rng, meth, cpg, simCfg)
	calls := abea.CallMethylation(pore, meth, cpg, evMeth, abea.DefaultConfig(), 2)
	if len(calls) == 0 {
		t.Fatal("no methylation calls")
	}
	var positive int
	for _, c := range calls {
		if c.LogLikRatio > 0 {
			positive++
		}
	}
	if positive*2 < len(calls) {
		t.Errorf("only %d/%d CpG sites show positive LLR on methylated signal", positive, len(calls))
	}
}

func TestPipelineBestPracticesPreprocessing(t *testing.T) {
	// The GATK Best Practices preprocessing chain the paper's
	// reference-guided pipeline implies: paired reads -> duplicate
	// marking -> base-quality recalibration -> PairHMM-ready evidence.
	rng := rand.New(rand.NewSource(31))
	ref := genome.NewReference(rng, "chr", 20_000, 0)
	sim := readsim.New(32)
	pcfg := readsim.DefaultPaired()
	pcfg.Read.Length = 100
	pairs := sim.PairedReads(ref.Seq, -1, 300, pcfg, "f")

	// Convert to alignment records at their true coordinates with
	// systematically overconfident qualities.
	cig, err := simio.ParseCigar("100M")
	if err != nil {
		t.Fatal(err)
	}
	var alns []*simio.Alignment
	addRead := func(r readsim.Read) {
		if len(r.Seq) != 100 {
			return // indel-bearing read; keep the test's CIGARs simple
		}
		seq := r.Seq
		if r.Reverse {
			seq = seq.ReverseComplement()
		}
		qual := make([]byte, len(seq))
		for i := range qual {
			qual[i] = 40 // machine reports Q40 regardless of truth
		}
		alns = append(alns, &simio.Alignment{
			ReadName: r.Name, RefName: "chr", Pos: r.RefPos,
			Cigar: cig, Seq: seq, Qual: qual, Reverse: r.Reverse,
		})
	}
	for _, p := range pairs {
		addRead(p.R1)
		addRead(p.R2)
	}
	// Inject PCR duplicates.
	for i := 0; i < 60; i++ {
		dup := *alns[rng.Intn(len(alns))]
		alns = append(alns, &dup)
	}

	marked := markdup.Mark(alns)
	if marked.Duplicates < 60 {
		t.Errorf("marked %d duplicates, planted 60", marked.Duplicates)
	}
	kept := markdup.Filter(alns)

	table := bqsr.Train(ref.Seq, kept, nil)
	// DefaultShort's ~0.2% substitution rate means true quality ~Q28,
	// well below the reported Q40.
	emp := table.Empirical(40, 50, 100)
	if emp < 22 || emp > 36 {
		t.Errorf("empirical quality %d, want in the high-20s for a 0.2%% error stream", emp)
	}
	if changed := table.Recalibrate(kept); changed == 0 {
		t.Error("recalibration changed nothing")
	}
	// Recalibrated evidence flows into the PairHMM.
	hap := ref.Seq[5000:5200]
	var region phmm.Region
	region.Haps = []genome.Seq{hap}
	for _, a := range kept {
		if a.Pos >= 5000 && a.Pos+100 <= 5200 {
			region.Reads = append(region.Reads, a.Seq)
			region.Quals = append(region.Quals, a.Qual)
		}
	}
	if len(region.Reads) == 0 {
		t.Skip("no reads landed in the probe window")
	}
	res := phmm.EvaluateRegion(&region)
	if res.CellUpdates == 0 {
		t.Error("PairHMM did no work on recalibrated reads")
	}
}

func TestPipelineLongReadCalling(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	const refLen = 10_000
	ref := genome.NewReference(rng, "chr", refLen, 0.05)
	donor := genome.PlantVariants(rng, ref, 0.001, 0)
	sim := readsim.New(22)
	lcfg := readsim.DefaultLong()
	lcfg.MeanLength = 2500
	lcfg.ErrorRate = 0.05
	var reads []readsim.Read
	reads = append(reads, sim.LongReads(donor.Haps[0], 0, 40, lcfg, "a")...)
	reads = append(reads, sim.LongReads(donor.Haps[1], 1, 40, lcfg, "b")...)

	mapper := chain.NewMapper(ref.Seq, 15, 10, 100)
	params := bsw.DefaultParams()
	params.Band = 200
	params.ZDrop = 0
	var alignments []*simio.Alignment
	for _, r := range reads {
		maps := mapper.Map(r.Seq, chain.DefaultConfig())
		if len(maps) == 0 {
			continue
		}
		best := maps[0]
		query := r.Seq
		if best.Reverse {
			query = r.Seq.ReverseComplement()
		}
		lo := best.RefStart - 100
		if lo < 0 {
			lo = 0
		}
		hi := best.RefEnd + 100
		if hi > refLen {
			hi = refLen
		}
		tr := bsw.AlignTrace(query, ref.Seq[lo:hi], params)
		if len(tr.Cigar) == 0 {
			continue
		}
		cig := tr.Cigar
		if tr.QBeg > 0 {
			cig = append(simio.Cigar{{Len: tr.QBeg, Op: simio.CigarSoftClip}}, cig...)
		}
		if tail := len(query) - tr.QEnd; tail > 0 {
			cig = append(cig, simio.CigarElem{Len: tail, Op: simio.CigarSoftClip})
		}
		aln := &simio.Alignment{
			ReadName: r.Name, RefName: "chr", Pos: lo + tr.TBeg,
			MapQ: 60, Cigar: cig, Seq: query, Reverse: best.Reverse,
		}
		if err := aln.Validate(); err != nil {
			t.Fatalf("invalid alignment for %s: %v", r.Name, err)
		}
		alignments = append(alignments, aln)
	}
	if len(alignments) < len(reads)*8/10 {
		t.Fatalf("only %d/%d reads aligned", len(alignments), len(reads))
	}
	// SAM round trip preserves the alignment set.
	var sam bytes.Buffer
	if err := simio.WriteSAM(&sam, []simio.FastaRecord{{Name: "chr", Seq: ref.Seq}}, alignments); err != nil {
		t.Fatal(err)
	}
	back, err := simio.ReadSAM(&sam)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(alignments) {
		t.Fatalf("SAM round trip %d -> %d", len(alignments), len(back))
	}
	// Candidate selection surfaces most planted variants.
	regions := pileup.SplitRegions(refLen, back, 5000)
	candidate := map[int]bool{}
	for _, rg := range regions {
		counts, _ := pileup.CountRegion(rg)
		for _, p := range nnvariant.SelectCandidates(counts, ref.Seq, rg.Start, 8, 0.25) {
			candidate[rg.Start+p] = true
		}
	}
	recovered := 0
	for _, v := range donor.Variants {
		for d := -2; d <= 2; d++ {
			if candidate[v.Pos+d] {
				recovered++
				break
			}
		}
	}
	if recovered*2 < len(donor.Variants) {
		t.Errorf("candidate recall %d/%d too low", recovered, len(donor.Variants))
	}
}

func TestPipelineBasecallRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	pore := signalsim.NewPoreModel()
	seq := genome.Random(rng, 400)
	signal := signalsim.RawSignal(rng, pore, seq, signalsim.DefaultConfig())
	cfg := nnbase.DefaultConfig()
	cfg.Channels = 16
	cfg.Blocks = 2
	m := nnbase.NewModel(5, cfg)
	called, macs := m.Basecall(signal, cfg)
	if macs == 0 {
		t.Fatal("no computation performed")
	}
	// Untrained network: assert structural sanity only.
	if len(called) == 0 {
		t.Fatal("no bases called")
	}
	if len(called) > len(signal) {
		t.Errorf("called %d bases from %d samples", len(called), len(signal))
	}
}
