// Command gbench-worker is one worker process of the shard fabric: it
// dials the coordinator started by `gbench -dist`, pulls shard leases,
// executes each shard's tasks through the registered kernel executors,
// and reports per-task digests. Heartbeats keep its leases alive
// through long shards; if the process dies mid-shard the coordinator's
// lease machinery reschedules its work onto the surviving fleet.
//
// A -faults plan arms worker-side chaos: killworker makes this process
// die abruptly (exit 7, like a SIGKILL from outside), slowshard stalls
// shard execution to trip lease expiry and hedging, and dropconn tears
// the coordinator connection down after computing a shard, forcing a
// reschedule of already-finished work. Fault sites match against
// "workerID/kernel" labels, so "w1" targets one worker and "spoa"
// targets one kernel fleet-wide.
//
// Usage:
//
//	gbench-worker -addr 127.0.0.1:9000 -id w1
//	gbench-worker -addr 127.0.0.1:9000 -id w2 -faults "killworker:w2:1" -fault-seed 7
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	_ "repro/internal/core" // registers the kernel shard executors
	"repro/internal/faultinject"
	"repro/internal/shard"
)

// exitKilled mimics an abrupt death: distinct from clean exits so the
// chaos tests can assert the worker really died by injection.
const exitKilled = 7

func main() {
	var (
		addr      = flag.String("addr", "", "coordinator address (required)")
		id        = flag.String("id", "", "worker ID (required, e.g. w1)")
		faults    = flag.String("faults", "", "worker-side fault plan (killworker/slowshard/dropconn, plus task trip-point kinds)")
		faultSeed = flag.Int64("fault-seed", 1, "seed for deterministic fault firing")
	)
	flag.Parse()
	if *addr == "" || *id == "" {
		fmt.Fprintln(os.Stderr, "gbench-worker: -addr and -id are required")
		os.Exit(2)
	}
	plan, err := faultinject.Parse(*faults, *faultSeed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	err = shard.RunWorker(ctx, shard.WorkerOptions{ID: *id, Addr: *addr, Plan: plan})
	switch {
	case err == nil:
		return // coordinator said shutdown
	case errors.Is(err, shard.ErrKilled):
		fmt.Fprintf(os.Stderr, "gbench-worker: %s killed by fault injection\n", *id)
		os.Exit(exitKilled)
	case errors.Is(err, context.Canceled):
		return
	default:
		fmt.Fprintf(os.Stderr, "gbench-worker: %s: %v\n", *id, err)
		os.Exit(1)
	}
}
