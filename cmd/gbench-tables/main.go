// Command gbench-tables regenerates the GenomicsBench paper's
// evaluation tables and figures from the Go reproduction.
//
// Usage:
//
//	gbench-tables                 # everything
//	gbench-tables -t gpu-control  # one table
//
// Table ids: config overview granularity gpu-control gpu-memory
// vector-waste imbalance instmix bpki scaling cache topdown cache-sweep
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
)

func main() {
	var (
		which = flag.String("t", "all", "table id (or 'all')")
		size  = flag.String("size", "small", "dataset size for measured tables")
		seed  = flag.Int64("seed", 42, "dataset seed")
	)
	flag.Parse()
	sz, err := core.ParseSize(*size)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	gen := map[string]func() *core.Table{
		"config":      func() *core.Table { return core.TableI() },
		"overview":    func() *core.Table { return core.TableII() },
		"granularity": func() *core.Table { return core.TableIII(sz, *seed) },
		"gpu-control": func() *core.Table { return core.TableIV(*seed) },
		"gpu-memory":  func() *core.Table { return core.TableV(*seed) },
		"vector-waste": func() *core.Table {
			return core.VectorWaste(*seed)
		},
		"imbalance": func() *core.Table { return core.Fig4(sz, *seed) },
		"instmix":   func() *core.Table { return core.Fig5(sz, *seed) },
		"bpki":      func() *core.Table { return core.Fig6(*seed) },
		"scaling": func() *core.Table {
			t, _ := core.Fig7(sz, *seed, []int{1, 2, 4, 8})
			return t
		},
		"cache":       func() *core.Table { return core.Fig8(*seed) },
		"topdown":     func() *core.Table { return core.Fig9(*seed) },
		"cache-sweep": func() *core.Table { return core.CacheSweepTable(*seed) },
	}

	if *which == "all" {
		for _, t := range core.AllTables(sz, *seed) {
			fmt.Println(t)
		}
		return
	}
	g, ok := gen[*which]
	if !ok {
		ids := make([]string, 0, len(gen))
		for id := range gen {
			ids = append(ids, id)
		}
		fmt.Fprintf(os.Stderr, "unknown table %q; have: %s\n", *which, strings.Join(ids, " "))
		os.Exit(2)
	}
	fmt.Println(g())
}
