// Command gbench runs individual GenomicsBench kernels on the
// small/large synthetic datasets and reports timing, operation mix and
// per-task work statistics.
//
// Usage:
//
//	gbench -bench fmi -size small -threads 4 -seed 42
//	gbench -bench all -size small
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime/pprof"

	"repro/internal/core"
)

func main() {
	var (
		benchName  = flag.String("bench", "all", "kernel name or 'all'")
		sizeName   = flag.String("size", "small", "dataset size: small or large")
		threads    = flag.Int("threads", 1, "worker threads")
		seed       = flag.Int64("seed", 42, "dataset seed")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
	)
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	size, err := core.ParseSize(*sizeName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	var benches []core.Benchmark
	if *benchName == "all" {
		benches = core.Benchmarks()
	} else {
		b, err := core.ByName(*benchName)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		benches = []core.Benchmark{b}
	}

	t := &core.Table{
		Title:   fmt.Sprintf("GenomicsBench (%s inputs, %d threads, seed %d)", size, *threads, *seed),
		Columns: []string{"benchmark", "tool", "elapsed", "tasks", "ops", "mix"},
	}
	for _, b := range benches {
		info := b.Info()
		b.Prepare(size, *seed)
		stats := b.Run(*threads)
		t.AddRow(info.Name, info.Tool, stats.Elapsed.Round(1e5),
			stats.TaskStats.Count(), stats.Counters.Total(), stats.Counters.String())
		b.Release() // keep later kernels' GC cost independent of earlier datasets
	}
	fmt.Print(t)
}
