// Command gbench runs individual GenomicsBench kernels on the
// small/large synthetic datasets and reports timing, operation mix and
// per-task work statistics.
//
// The suite degrades gracefully: a kernel that panics, errors out, or
// exceeds its per-attempt timeout is retried under the resilience
// policy, then marked failed in the report while the remaining kernels
// still run. The process exits 0 only when every kernel succeeded.
//
// With -metrics and -trace the run leaves machine-readable NDJSON
// records — provenance meta, one kernel record per kernel (including
// failed and skipped ones), scheduler/resilience/fault counters,
// runtime samples, and phase spans — documented in
// docs/OBSERVABILITY.md. -pprof writes file-based runtime/pprof CPU
// and heap profiles.
//
// Usage:
//
//	gbench -bench fmi -size small -threads 4 -seed 42
//	gbench -bench all -size small
//	gbench -bench fmi,chain,spoa -size small
//	gbench -bench all -size small -faults "panic:spoa:1.0"
//	gbench -bench all -size small -metrics out.ndjson -trace trace.ndjson
//	gbench -bench all -size small -pprof cpu.out,mem.out
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime/pprof"
	"strings"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/obs"
	"repro/internal/resilience"
	"repro/internal/shard"
)

func main() {
	var (
		benchName   = flag.String("bench", "all", "kernel name, comma list, or 'all'")
		sizeName    = flag.String("size", "small", "dataset size: small or large")
		threads     = flag.Int("threads", 1, "worker threads")
		seed        = flag.Int64("seed", 42, "dataset seed")
		cpuProfile  = flag.String("cpuprofile", "", "write a CPU profile to this file (same as the first -pprof path)")
		pprofSpec   = flag.String("pprof", "", `write runtime/pprof profiles: "cpu.out", "cpu.out,mem.out", or ",mem.out"`)
		metricsPath = flag.String("metrics", "", "write run metrics (NDJSON) to this file")
		tracePath   = flag.String("trace", "", "write phase spans (NDJSON) to this file")
		sampleEvery = flag.Duration("sample-interval", 100*time.Millisecond, "runtime sampler interval (with -metrics)")
		faults      = flag.String("faults", "", `fault plan, e.g. "panic:spoa:0.5,delay:chain:200ms" (see internal/faultinject)`)
		faultSeed   = flag.Int64("fault-seed", 1, "seed for deterministic fault firing")
		timeout     = flag.Duration("timeout", 0, "per-attempt kernel timeout (0 = size default)")
		attempts    = flag.Int("attempts", 0, "attempts per kernel (0 = policy default)")
		distN       = flag.Int("dist", 0, "run shardable kernels over N worker processes (0 = in-process)")
		distAddr    = flag.String("dist-addr", "127.0.0.1:0", "coordinator listen address (with -dist)")
		distShards  = flag.Int("dist-shards", 16, "shards per distributed kernel job")
		distLease   = flag.Duration("dist-lease", 0, "shard lease duration (0 = 2s default)")
		distVerify  = flag.Bool("dist-verify", false, "re-run each distributed kernel in-process and fail on digest mismatch")
		workerBin   = flag.String("worker-bin", "", "gbench-worker binary (default: sibling of gbench, then $PATH)")
	)
	flag.Parse()

	cpuPath, memPath, err := parsePprofSpec(*pprofSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if cpuPath == "" {
		cpuPath = *cpuProfile
	}
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	size, err := core.ParseSize(*sizeName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	benches, err := selectBenches(*benchName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	var plan *faultinject.Plan
	if *faults != "" {
		plan, err = faultinject.Parse(*faults, *faultSeed)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		faultinject.Arm(plan)
		defer faultinject.Disarm()
		fmt.Fprintf(os.Stderr, "gbench: fault plan armed: %s\n", *faults)
	}

	policy := core.PolicyFor(size)
	if *timeout > 0 {
		policy.Timeout = *timeout
	}
	if *attempts > 0 {
		policy.Attempts = *attempts
	}

	// Observability: metrics registry + spans whenever either output
	// was requested; the runtime sampler only with -metrics (it is the
	// only consumer of the samples).
	var observer *obs.Observer
	if *metricsPath != "" || *tracePath != "" {
		observer = obs.NewObserver()
		if *metricsPath != "" {
			observer.Sampler = obs.StartSampler(*sampleEvery)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Distributed mode: start the coordinator, spawn the worker fleet
	// (handing it the same fault spec, whose killworker/slowshard/
	// dropconn clauses only workers evaluate), and attach the fabric to
	// the suite config. Workers that die mid-run are rescheduled around;
	// the fleet is reaped after the suite.
	var distCfg *core.DistConfig
	var fleet *shard.Fleet
	var coord *shard.Coordinator
	if *distN > 0 {
		opts := shard.DefaultOptions()
		if *distLease > 0 {
			opts.Lease = *distLease
			opts.HeartbeatGrace = *distLease
		}
		coord = shard.NewCoordinator(opts)
		if err := coord.Start(*distAddr); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		bin, err := shard.WorkerBinary(*workerBin)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fleet, err = shard.SpawnWorkers(ctx, bin, coord.Addr(), *distN, *faults, *faultSeed)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		wctx, wcancel := context.WithTimeout(ctx, 15*time.Second)
		err = coord.WaitForWorkers(wctx, *distN)
		wcancel()
		if err != nil {
			fmt.Fprintf(os.Stderr, "gbench: %v\n", err)
			fleet.Stop()
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "gbench: fabric up at %s with %d worker(s)\n", coord.Addr(), *distN)
		distCfg = &core.DistConfig{Fabric: coord, Shards: *distShards, Verify: *distVerify}
	}

	cfg := core.SuiteConfig{
		Size:    size,
		Seed:    *seed,
		Threads: *threads,
		Policy:  policy,
		Obs:     observer,
		Progress: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "gbench: "+format+"\n", args...)
		},
	}
	cfg.Dist = distCfg
	meta := core.NewRunMeta(cfg, *faults)
	outcomes := core.RunSuite(ctx, benches, cfg)

	if coord != nil {
		coord.Close() // broadcasts shutdown to surviving workers
		fleet.Wait()
	}
	if observer != nil {
		observer.Sampler.Stop()
	}
	if *metricsPath != "" {
		if err := writeMetrics(*metricsPath, meta, outcomes, plan, observer); err != nil {
			fmt.Fprintf(os.Stderr, "gbench: writing metrics: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "gbench: metrics written to %s\n", *metricsPath)
	}
	if *tracePath != "" {
		if err := writeTrace(*tracePath, meta, observer); err != nil {
			fmt.Fprintf(os.Stderr, "gbench: writing trace: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "gbench: trace written to %s\n", *tracePath)
	}
	if memPath != "" {
		if err := writeHeapProfile(memPath); err != nil {
			fmt.Fprintf(os.Stderr, "gbench: writing heap profile: %v\n", err)
			os.Exit(1)
		}
	}

	// The first six columns match the historical report exactly; the
	// resilience columns are appended so success rows stay byte-stable
	// within them.
	t := &core.Table{
		Title:   fmt.Sprintf("GenomicsBench (%s inputs, %d threads, seed %d)", size, *threads, *seed),
		Columns: []string{"benchmark", "tool", "elapsed", "tasks", "ops", "mix", "status", "shard", "error"},
	}
	for i := range outcomes {
		o := &outcomes[i]
		if o.Failed() {
			t.AddRow(o.Info.Name, o.Info.Tool, "-", "-", "-", "-", o.Status, shardCell(o.Shard), firstLine(o.Err))
			continue
		}
		stats := o.Stats
		t.AddRow(o.Info.Name, o.Info.Tool, stats.Elapsed.Round(1e5),
			stats.TaskStats.Count(), stats.Counters.Total(), stats.Counters.String(), o.Status, shardCell(o.Shard), "-")
	}
	fmt.Print(t) // partial results flush even when kernels failed

	failed := core.FailedOutcomes(outcomes)
	if len(failed) == 0 {
		return
	}
	fmt.Fprintf(os.Stderr, "\ngbench: %d of %d kernel(s) did not complete:\n", len(failed), len(outcomes))
	for i := range failed {
		o := &failed[i]
		fmt.Fprintf(os.Stderr, "  %s: %s: %v\n", o.Info.Name, o.Status, o.Err)
		var ke *resilience.KernelError
		if errors.As(o.Err, &ke) && ke.Panicked {
			fmt.Fprintf(os.Stderr, "%s\n", indent(ke.StackExcerpt(12), "    "))
		}
	}
	os.Exit(1)
}

// parsePprofSpec splits -pprof into CPU and heap profile paths:
// "cpu.out" (CPU only), "cpu.out,mem.out" (both), ",mem.out" (heap
// only).
func parsePprofSpec(spec string) (cpu, mem string, err error) {
	if spec == "" {
		return "", "", nil
	}
	parts := strings.Split(spec, ",")
	if len(parts) > 2 {
		return "", "", fmt.Errorf(`gbench: bad -pprof %q (want "cpu.out", "cpu.out,mem.out", or ",mem.out")`, spec)
	}
	cpu = strings.TrimSpace(parts[0])
	if len(parts) == 2 {
		mem = strings.TrimSpace(parts[1])
	}
	if cpu == "" && mem == "" {
		return "", "", fmt.Errorf("gbench: -pprof %q names no profile paths", spec)
	}
	return cpu, mem, nil
}

func writeMetrics(path string, meta core.RunMeta, outcomes []core.KernelOutcome, plan *faultinject.Plan, observer *obs.Observer) error {
	var faultRecs []core.FaultRecord
	for _, s := range plan.Stats() {
		faultRecs = append(faultRecs, core.FaultRecord{
			Type: "fault", Clause: s.Clause, Site: s.Site, Kind: s.Kind.String(),
			Evals: s.Evals, Tripped: s.Tripped,
		})
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := core.WriteMetricsNDJSON(f, meta, outcomes, faultRecs, observer); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func writeTrace(path string, meta core.RunMeta, observer *obs.Observer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := core.WriteTraceNDJSON(f, meta, observer); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func writeHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := pprof.WriteHeapProfile(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// selectBenches resolves -bench: "all", one name, or a comma list.
func selectBenches(spec string) ([]core.Benchmark, error) {
	if spec == "all" {
		return core.Benchmarks(), nil
	}
	var benches []core.Benchmark
	for _, name := range strings.Split(spec, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		b, err := core.ByName(name)
		if err != nil {
			return nil, err
		}
		benches = append(benches, b)
	}
	if len(benches) == 0 {
		return nil, fmt.Errorf("no benchmarks selected by %q", spec)
	}
	return benches, nil
}

// shardCell compacts a distributed kernel's lifecycle summary:
// workers/shards plus the recovery counters (rescheduled, hedged,
// lease-expired).
func shardCell(s *shard.Summary) string {
	if s == nil {
		return "-"
	}
	return fmt.Sprintf("%dw/%ds r=%d h=%d x=%d", s.Workers, s.Shards, s.Rescheduled, s.Hedged, s.LeaseExpired)
}

// firstLine compacts an error for a table cell.
func firstLine(err error) string {
	if err == nil {
		return "-"
	}
	s := err.Error()
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		s = s[:i]
	}
	const max = 60
	if len(s) > max {
		s = s[:max-3] + "..."
	}
	return s
}

func indent(s, prefix string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i, l := range lines {
		lines[i] = prefix + l
	}
	return strings.Join(lines, "\n")
}
