// Command gbench runs individual GenomicsBench kernels on the
// small/large synthetic datasets and reports timing, operation mix and
// per-task work statistics.
//
// The suite degrades gracefully: a kernel that panics, errors out, or
// exceeds its per-attempt timeout is retried under the resilience
// policy, then marked failed in the report while the remaining kernels
// still run. The process exits 0 only when every kernel succeeded.
//
// Usage:
//
//	gbench -bench fmi -size small -threads 4 -seed 42
//	gbench -bench all -size small
//	gbench -bench fmi,chain,spoa -size small
//	gbench -bench all -size small -faults "panic:spoa:1.0"
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime/pprof"
	"strings"
	"syscall"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/resilience"
)

func main() {
	var (
		benchName  = flag.String("bench", "all", "kernel name, comma list, or 'all'")
		sizeName   = flag.String("size", "small", "dataset size: small or large")
		threads    = flag.Int("threads", 1, "worker threads")
		seed       = flag.Int64("seed", 42, "dataset seed")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		faults     = flag.String("faults", "", `fault plan, e.g. "panic:spoa:0.5,delay:chain:200ms" (see internal/faultinject)`)
		faultSeed  = flag.Int64("fault-seed", 1, "seed for deterministic fault firing")
		timeout    = flag.Duration("timeout", 0, "per-attempt kernel timeout (0 = size default)")
		attempts   = flag.Int("attempts", 0, "attempts per kernel (0 = policy default)")
	)
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	size, err := core.ParseSize(*sizeName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	benches, err := selectBenches(*benchName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	if *faults != "" {
		plan, err := faultinject.Parse(*faults, *faultSeed)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		faultinject.Arm(plan)
		defer faultinject.Disarm()
		fmt.Fprintf(os.Stderr, "gbench: fault plan armed: %s\n", *faults)
	}

	policy := core.PolicyFor(size)
	if *timeout > 0 {
		policy.Timeout = *timeout
	}
	if *attempts > 0 {
		policy.Attempts = *attempts
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	cfg := core.SuiteConfig{
		Size:    size,
		Seed:    *seed,
		Threads: *threads,
		Policy:  policy,
		Progress: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "gbench: "+format+"\n", args...)
		},
	}
	outcomes := core.RunSuite(ctx, benches, cfg)

	// The first six columns match the historical report exactly; the
	// resilience columns are appended so success rows stay byte-stable
	// within them.
	t := &core.Table{
		Title:   fmt.Sprintf("GenomicsBench (%s inputs, %d threads, seed %d)", size, *threads, *seed),
		Columns: []string{"benchmark", "tool", "elapsed", "tasks", "ops", "mix", "status", "error"},
	}
	for i := range outcomes {
		o := &outcomes[i]
		if o.Failed() {
			t.AddRow(o.Info.Name, o.Info.Tool, "-", "-", "-", "-", o.Status, firstLine(o.Err))
			continue
		}
		stats := o.Stats
		t.AddRow(o.Info.Name, o.Info.Tool, stats.Elapsed.Round(1e5),
			stats.TaskStats.Count(), stats.Counters.Total(), stats.Counters.String(), o.Status, "-")
	}
	fmt.Print(t) // partial results flush even when kernels failed

	failed := core.FailedOutcomes(outcomes)
	if len(failed) == 0 {
		return
	}
	fmt.Fprintf(os.Stderr, "\ngbench: %d of %d kernel(s) did not complete:\n", len(failed), len(outcomes))
	for i := range failed {
		o := &failed[i]
		fmt.Fprintf(os.Stderr, "  %s: %s: %v\n", o.Info.Name, o.Status, o.Err)
		var ke *resilience.KernelError
		if errors.As(o.Err, &ke) && ke.Panicked {
			fmt.Fprintf(os.Stderr, "%s\n", indent(ke.StackExcerpt(12), "    "))
		}
	}
	os.Exit(1)
}

// selectBenches resolves -bench: "all", one name, or a comma list.
func selectBenches(spec string) ([]core.Benchmark, error) {
	if spec == "all" {
		return core.Benchmarks(), nil
	}
	var benches []core.Benchmark
	for _, name := range strings.Split(spec, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		b, err := core.ByName(name)
		if err != nil {
			return nil, err
		}
		benches = append(benches, b)
	}
	if len(benches) == 0 {
		return nil, fmt.Errorf("no benchmarks selected by %q", spec)
	}
	return benches, nil
}

// firstLine compacts an error for a table cell.
func firstLine(err error) string {
	if err == nil {
		return "-"
	}
	s := err.Error()
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		s = s[:i]
	}
	const max = 60
	if len(s) > max {
		s = s[:max-3] + "..."
	}
	return s
}

func indent(s, prefix string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i, l := range lines {
		lines[i] = prefix + l
	}
	return strings.Join(lines, "\n")
}
