// Command gbench-bench is the benchmark-regression harness: it runs
// the before/after microbenchmark pair for each optimized kernel
// in-process (scalar vs bit-parallel, allocating vs pooled), emits the
// results as a stable JSON report (BENCH_PR3.json schema, see
// internal/benchjson), and can diff two such reports with a tolerance
// for CI gating.
//
// Usage:
//
//	gbench-bench -o BENCH_PR3.json                 # full run, ~1s per variant
//	gbench-bench -benchtime 1x -o now.json         # CI smoke: one iteration each
//	gbench-bench -kernels bsw,phmm                 # subset, report to stdout
//	gbench-bench -reps 3 -label PR7 -history-append BENCH_HISTORY.ndjson
//	gbench-bench -compare -tolerance 10 BENCH_PR3.json now.json
//	gbench-bench -compare -history BENCH_HISTORY.ndjson BENCH_PR5.json now.json
//
// Reports are stamped with the measuring host (OS/arch/cores/
// GOMAXPROCS) and, with -label, a PR tag; -reps N measures each
// variant N times and keeps the fastest run, squeezing scheduler noise
// out of records meant to be compared across months. -history-append
// appends the report as one NDJSON line to the append-only history
// file the trend gate reads.
//
// In -compare mode the exit status is 1 when any baseline pair is
// missing from the current report, its optimized variant slowed down
// by more than the tolerance factor (in absolute ns/op OR in speedup
// ratio — both variants slowing together is still a regression), or,
// with -history, the trend gate finds a corroborated drift below the
// pair's best-ever record. Thread pairs the host cannot exercise are
// reported as skipped, never as passed.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/abea"
	"repro/internal/benchjson"
	"repro/internal/bsw"
	"repro/internal/chain"
	"repro/internal/cpufeat"
	"repro/internal/dbg"
	"repro/internal/fmindex"
	"repro/internal/genome"
	"repro/internal/grm"
	"repro/internal/kmercnt"
	"repro/internal/phmm"
	"repro/internal/pileup"
	"repro/internal/poa"
	"repro/internal/scratch"
	"repro/internal/seq2"
	"repro/internal/signalsim"
	"repro/internal/simio"
)

// pairSpec is one kernel's before/after benchmark pair. Inputs are
// built once (deterministic seeds) and shared by both variants so the
// two measurements cover identical work.
type pairSpec struct {
	kernel, pair  string
	threads       int // thread count of the optimized side, 0 for single-threaded pairs
	baselineName  string
	optimizedName string
	baseline      func(b *testing.B)
	optimized     func(b *testing.B)
}

func main() {
	var (
		out       = flag.String("o", "", "write the report JSON to this file (default stdout)")
		benchtime = flag.String("benchtime", "", `benchmark duration per variant, e.g. "1x" or "200ms" (default 1s)`)
		kernels   = flag.String("kernels", "", "comma-separated kernel filter (default all)")
		compare   = flag.Bool("compare", false, "compare two report files: gbench-bench -compare baseline.json current.json")
		tolerance = flag.Float64("tolerance", 1.25, "allowed slowdown factor on optimized paths in -compare mode")
		threads   = flag.Int("threads", 4, "thread count for the parallel side of the */threads pairs")
		reps      = flag.Int("reps", 1, "measure each variant this many times and keep the fastest run")
		label     = flag.String("label", "", `tag stamped on the report, e.g. "PR7" (history records should carry one)`)
		note      = flag.String("note", "", "free-form provenance note stamped on the report")
		histOut   = flag.String("history-append", "", "append the report as one NDJSON line to this history file")
		histIn    = flag.String("history", "", "in -compare mode, also run the trend gate over this NDJSON history file")
		scenTrace = flag.String("scenario-trace", "", "run each scenario fused once and write its span trace as NDJSON to this file (no benchmarking)")
	)
	flag.Parse()

	if *compare {
		os.Exit(runCompare(flag.Args(), *tolerance, *histIn))
	}
	if *scenTrace != "" {
		if err := writeScenarioTrace(*scenTrace); err != nil {
			fmt.Fprintf(os.Stderr, "gbench-bench: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote scenario trace to %s\n", *scenTrace)
		return
	}

	// Register the testing flags so the in-process benchmarks honor
	// -benchtime; everything else stays at its default.
	testing.Init()
	if *benchtime != "" {
		if err := flag.Set("test.benchtime", *benchtime); err != nil {
			fmt.Fprintf(os.Stderr, "gbench-bench: bad -benchtime %q: %v\n", *benchtime, err)
			os.Exit(2)
		}
	}

	want := map[string]bool{}
	for _, k := range strings.Split(*kernels, ",") {
		if k = strings.TrimSpace(k); k != "" {
			want[k] = true
		}
	}

	if *reps < 1 {
		*reps = 1
	}
	report := benchjson.New()
	report.Label = *label
	report.Note = *note
	report.Time = time.Now().UTC().Format(time.RFC3339)
	report.Host = currentHost()
	for _, def := range allPairDefs(*threads) {
		if len(want) > 0 && !want[def.kernel] {
			continue
		}
		// Inputs build lazily, after the kernel filter: a -kernels smoke
		// run must not pay for the big excluded workloads (the fmindex
		// smem pair builds a 32 Mbp index).
		spec := def.build()
		fmt.Fprintf(os.Stderr, "bench %s/%s\n", spec.kernel, spec.pair)
		base := bestOf(*reps, spec.baseline)
		opt := bestOf(*reps, spec.optimized)
		report.Add(spec.kernel, spec.pair,
			metricsOf(spec.baselineName, base),
			metricsOf(spec.optimizedName, opt))
		report.Entries[len(report.Entries)-1].Threads = spec.threads
	}
	if len(scenarioMismatches) > 0 {
		for _, m := range scenarioMismatches {
			fmt.Fprintf(os.Stderr, "gbench-bench: DIGEST MISMATCH %s\n", m)
		}
		os.Exit(1)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gbench-bench: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := benchjson.Write(w, report); err != nil {
		fmt.Fprintf(os.Stderr, "gbench-bench: %v\n", err)
		os.Exit(1)
	}
	for _, e := range report.Entries {
		fmt.Fprintf(os.Stderr, "  %-16s %9.0f ns/op -> %9.0f ns/op  (%.2fx, allocs %d -> %d)\n",
			e.Kernel+"/"+e.Pair, e.Baseline.NsPerOp, e.Optimized.NsPerOp,
			e.Speedup, e.Baseline.AllocsPerOp, e.Optimized.AllocsPerOp)
	}
	if *histOut != "" {
		if err := benchjson.AppendHistory(*histOut, report); err != nil {
			fmt.Fprintf(os.Stderr, "gbench-bench: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "appended %q record to %s\n", report.Label, *histOut)
	}
}

// bestOf runs the benchmark reps times and keeps the fastest run: a
// record meant to survive in the history file should capture what the
// code CAN do, not what the scheduler allowed on one sample. The
// committed PR5 pileup record is the cautionary tale — one noisy
// sample read as an 18% regression.
func bestOf(reps int, f func(b *testing.B)) testing.BenchmarkResult {
	best := testing.Benchmark(f)
	for r := 1; r < reps; r++ {
		if got := testing.Benchmark(f); nsPerOp(got) < nsPerOp(best) {
			best = got
		}
	}
	return best
}

func nsPerOp(r testing.BenchmarkResult) float64 {
	return float64(r.T.Nanoseconds()) / float64(r.N)
}

func currentHost() *benchjson.Host {
	return &benchjson.Host{
		OS:         runtime.GOOS,
		Arch:       runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
		SIMD:       cpufeat.String(),
	}
}

func runCompare(paths []string, tolerance float64, historyPath string) int {
	if len(paths) != 2 {
		fmt.Fprintln(os.Stderr, "gbench-bench: -compare needs exactly two report files")
		return 2
	}
	read := func(p string) *benchjson.Report {
		f, err := os.Open(p)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gbench-bench: %v\n", err)
			os.Exit(2)
		}
		defer f.Close()
		r, err := benchjson.Read(f)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gbench-bench: %s: %v\n", p, err)
			os.Exit(2)
		}
		return r
	}
	baseline, current := read(paths[0]), read(paths[1])
	res := benchjson.CompareDetailed(baseline, current, benchjson.CompareOptions{
		NsTolerance: tolerance, SpeedupTolerance: tolerance,
	})
	failed := false
	for _, s := range res.Skipped {
		fmt.Printf("SKIP %s\n", s)
	}
	for _, g := range res.Regressions {
		fmt.Printf("REGRESSION %s\n", g)
		failed = true
	}
	if len(res.Regressions) == 0 {
		fmt.Printf("OK: %d pairs within %.2fx of baseline (%d skipped)\n",
			len(baseline.Entries)-len(res.Skipped), tolerance, len(res.Skipped))
	}

	if historyPath != "" {
		records, dropped, err := benchjson.ReadHistoryFile(historyPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gbench-bench: %s: %v\n", historyPath, err)
			return 2
		}
		if dropped {
			fmt.Fprintf(os.Stderr, "gbench-bench: %s: dropped a truncated trailing record\n", historyPath)
		}
		v := benchjson.TrendGate(records, benchjson.TrendOptions{})
		for _, s := range v.Skipped {
			fmt.Printf("TREND SKIP %s\n", s)
		}
		for _, w := range v.Warnings {
			fmt.Printf("TREND WARN %s\n", w)
		}
		for _, f := range v.Failures {
			fmt.Printf("TREND FAIL %s\n", f)
			failed = true
		}
		if len(v.Failures) == 0 {
			fmt.Printf("TREND OK: latest record holds against %d earlier (%d warnings, %d skipped)\n",
				len(records)-1, len(v.Warnings), len(v.Skipped))
		}
	}
	if failed {
		return 1
	}
	return 0
}

func metricsOf(name string, r testing.BenchmarkResult) benchjson.Metrics {
	return benchjson.Metrics{
		Name:        name,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		Iterations:  r.N,
	}
}

// pairDef names a pair's kernel without building its inputs; the
// build hook constructs the workload (deterministic seeds) only when
// the kernel passes the -kernels filter.
type pairDef struct {
	kernel string
	build  func() pairSpec
}

// allPairDefs lists every kernel's before/after pair. Workloads mirror
// the BenchmarkXxx pairs in each kernel's opt_test.go: realistic sizes,
// deterministic seeds. threads sets the parallel side of the
// */threads scaling pairs.
func allPairDefs(threads int) []pairDef {
	defs := []pairDef{
		{"bsw", bswPair},
		{"phmm", phmmPair},
		{"phmm", phmmLanesPair},
		{"kmercnt", kmercntPair},
		{"kmercnt", kmercntBatchedPair},
		{"fmindex", fmindexPair},
		{"fmindex", fmindexSmemPair},
		{"poa", poaPair},
		{"poa", poaLanesPair},
		{"abea", abeaPair},
		{"abea", abeaLanesPair},
		{"dbg", dbgPair},
		{"pileup", pileupPair},
		{"grm", grmPair},
		{"chain", func() pairSpec { return chainThreadsPair(threads) }},
		{"grm", func() pairSpec { return grmThreadsPair(threads) }},
		{"pileup", func() pairSpec { return pileupThreadsPair(threads) }},
		{"fmindex", func() pairSpec { return fmindexThreadsPair(threads) }},
		{"kmercnt", func() pairSpec { return kmercntThreadsPair(threads) }},
	}
	return append(defs, scenarioPairDefs()...)
}

// pileupPair measures the packed match-run counting path against the
// per-base reference walker over region-split simulated alignments —
// the same work CountRegion does per suite task.
func pileupPair() pairSpec {
	rng := rand.New(rand.NewSource(71))
	ref := genome.Random(rng, 20_000)
	alnCfg := simio.DefaultAlignSim()
	alnCfg.MeanReadLen = 800
	alns := simio.SimulateAlignments(rng, ref, 400, alnCfg)
	regions := pileup.SplitRegions(len(ref), alns, 5_000)
	return pairSpec{
		kernel: "pileup", pair: "count",
		baselineName: "pileup/count/scalar", optimizedName: "pileup/count/packed",
		baseline: func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				pileup.CountRegionScalar(regions[i%len(regions)])
			}
		},
		optimized: func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				pileup.CountRegion(regions[i%len(regions)])
			}
		},
	}
}

// grmPair measures the tile-blocked relationship-matrix build against
// the naive triple loop on a population small enough that the naive
// side finishes in benchmark time.
func grmPair() pairSpec {
	rng := rand.New(rand.NewSource(72))
	g := grm.Simulate(rng, 96, 512, 0.1)
	return pairSpec{
		kernel: "grm", pair: "compute",
		baselineName: "grm/compute/naive", optimizedName: "grm/compute/blocked",
		baseline: func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				grm.ComputeNaive(g)
			}
		},
		optimized: func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				grm.Compute(g, 64, 1)
			}
		},
	}
}

// The */threads axis: the same kernel execution at one thread and at
// the -threads flag's count, for the inter-task-parallel kernels whose
// pairs above are single-threaded micro pairs. The pair speedup is the
// parallel scaling factor.

func clampThreads(threads int) int {
	if threads < 1 {
		return 1
	}
	return threads
}

func tName(threads int) string { return fmt.Sprintf("t%d", threads) }

// chainThreadsPair: one task per read pair, anchors from real
// minimizer hits.
func chainThreadsPair(threads int) pairSpec {
	threads = clampThreads(threads)
	rng := rand.New(rand.NewSource(81))
	tasks := make([]chain.Task, 48)
	for i := range tasks {
		base := genome.Random(rng, 2_000)
		other := base.Clone()
		for m := 0; m < 40; m++ {
			other[rng.Intn(len(other))] = genome.Base(rng.Intn(4))
		}
		tasks[i] = chain.Task{Anchors: chain.SharedAnchors(base, other, 15, 10, 64)}
	}
	chainCfg := chain.DefaultConfig()
	return pairSpec{
		kernel: "chain", pair: "threads", threads: threads,
		baselineName: "chain/threads/t1", optimizedName: "chain/threads/" + tName(threads),
		baseline: func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				chain.RunKernel(tasks, chainCfg, 1)
			}
		},
		optimized: func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				chain.RunKernel(tasks, chainCfg, threads)
			}
		},
	}
}

// grmThreadsPair: tile tasks over a larger population than the micro
// pair.
func grmThreadsPair(threads int) pairSpec {
	threads = clampThreads(threads)
	grng := rand.New(rand.NewSource(82))
	gts := grm.Simulate(grng, 256, 1_024, 0.1)
	return pairSpec{
		kernel: "grm", pair: "threads", threads: threads,
		baselineName: "grm/threads/t1", optimizedName: "grm/threads/" + tName(threads),
		baseline: func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				grm.Compute(gts, 64, 1)
			}
		},
		optimized: func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				grm.Compute(gts, 64, threads)
			}
		},
	}
}

// pileupThreadsPair: region tasks over simulated alignments.
func pileupThreadsPair(threads int) pairSpec {
	threads = clampThreads(threads)
	prng := rand.New(rand.NewSource(83))
	ref := genome.Random(prng, 50_000)
	alnCfg := simio.DefaultAlignSim()
	alnCfg.MeanReadLen = 800
	alns := simio.SimulateAlignments(prng, ref, 1_000, alnCfg)
	regions := pileup.SplitRegions(len(ref), alns, 5_000)
	return pairSpec{
		kernel: "pileup", pair: "threads", threads: threads,
		baselineName: "pileup/threads/t1", optimizedName: "pileup/threads/" + tName(threads),
		baseline: func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				pileup.RunKernel(regions, 1)
			}
		},
		optimized: func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				pileup.RunKernel(regions, threads)
			}
		},
	}
}

// fmindexThreadsPair: the fmi kernel (per-worker batch engines) at one
// thread and at -threads.
func fmindexThreadsPair(threads int) pairSpec {
	threads = clampThreads(threads)
	rng := rand.New(rand.NewSource(84))
	g := genome.Random(rng, 1<<20)
	x := fmindex.Build(g)
	reads := sampledReads(rng, g, 192, 100, 2)
	cfg := fmindex.DefaultKernelConfig()
	return pairSpec{
		kernel: "fmindex", pair: "threads", threads: threads,
		baselineName: "fmindex/threads/t1", optimizedName: "fmindex/threads/" + tName(threads),
		baseline: func(b *testing.B) {
			c := cfg
			c.Threads = 1
			for i := 0; i < b.N; i++ {
				fmindex.RunKernel(x, reads, c)
			}
		},
		optimized: func(b *testing.B) {
			c := cfg
			c.Threads = threads
			for i := 0; i < b.N; i++ {
				fmindex.RunKernel(x, reads, c)
			}
		},
	}
}

// kmercntThreadsPair: the kmer-cnt kernel (private tables, wave-batched
// inserts) at one thread and at -threads.
func kmercntThreadsPair(threads int) pairSpec {
	threads = clampThreads(threads)
	rng := rand.New(rand.NewSource(85))
	reads := make([]genome.Seq, 96)
	for i := range reads {
		reads[i] = genome.Random(rng, 1_500)
	}
	return pairSpec{
		kernel: "kmercnt", pair: "threads", threads: threads,
		baselineName: "kmercnt/threads/t1", optimizedName: "kmercnt/threads/" + tName(threads),
		baseline: func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				kmercnt.RunKernel(reads, 17, 1, kmercnt.Linear)
			}
		},
		optimized: func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				kmercnt.RunKernel(reads, 17, threads, kmercnt.Linear)
			}
		},
	}
}

func bswPair() pairSpec {
	rng := rand.New(rand.NewSource(1234))
	pairs := make([]bsw.Pair, 64)
	for i := range pairs {
		n := 80 + rng.Intn(120)
		q := genome.Random(rng, n)
		t := q.Clone()
		for k := 0; k < 8; k++ {
			t[rng.Intn(len(t))] = genome.Base(rng.Intn(4))
		}
		pairs[i] = bsw.Pair{Query: q, Target: t}
	}
	p := bsw.DefaultParams()
	return pairSpec{
		kernel: "bsw", pair: "align",
		baselineName: "bsw/align/scalar", optimizedName: "bsw/align/packed",
		baseline: func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				pr := pairs[i%len(pairs)]
				bsw.Align(pr.Query, pr.Target, p)
			}
		},
		optimized: func(b *testing.B) {
			b.ReportAllocs()
			arena := scratch.New()
			for i := 0; i < b.N; i++ {
				pr := pairs[i%len(pairs)]
				bsw.AlignInto(pr.Query, pr.Target, p, arena)
			}
		},
	}
}

func phmmPair() pairSpec {
	rng := rand.New(rand.NewSource(14))
	rg := &phmm.Region{}
	for h := 0; h < 4; h++ {
		rg.Haps = append(rg.Haps, genome.Random(rng, 100+rng.Intn(100)))
	}
	for r := 0; r < 8; r++ {
		m := 10 + rng.Intn(150)
		read := genome.Random(rng, m)
		qual := make([]byte, m)
		for i := range qual {
			qual[i] = byte(10 + rng.Intn(40))
		}
		rg.Reads = append(rg.Reads, read)
		rg.Quals = append(rg.Quals, qual)
	}
	return pairSpec{
		kernel: "phmm", pair: "region",
		baselineName: "phmm/region/alloc", optimizedName: "phmm/region/pooled",
		baseline: func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				phmm.EvaluateRegion(rg)
			}
		},
		optimized: func(b *testing.B) {
			b.ReportAllocs()
			s := phmm.NewScratch()
			for i := 0; i < b.N; i++ {
				phmm.EvaluateRegionInto(rg, s)
			}
		},
	}
}

// phmmLanesPair measures the lane-batched region evaluation against
// the scalar reference on lane-friendly regions: haplotype counts in
// the dozens (GATK's assembler emits up to 128 candidates per active
// region), short reads against longer haplotypes, mirroring the phmm
// kernel workload's geometry.
func phmmLanesPair() pairSpec {
	rng := rand.New(rand.NewSource(15))
	regions := make([]*phmm.Region, 6)
	for i := range regions {
		hapLen := 120 + rng.Intn(180)
		base := genome.Random(rng, hapLen)
		rg := &phmm.Region{}
		nh := 20 + rng.Intn(13)
		for h := 0; h < nh; h++ {
			hap := base.Clone()
			for m := 0; m < h%8; m++ {
				hap[rng.Intn(len(hap))] = genome.Base(rng.Intn(4))
			}
			rg.Haps = append(rg.Haps, hap)
		}
		for r := 0; r < 6+rng.Intn(10); r++ {
			rl := 40 + rng.Intn(40)
			start := rng.Intn(hapLen - rl)
			read := base[start : start+rl].Clone()
			for k := 0; k < rl/30+1; k++ {
				read[rng.Intn(rl)] = genome.Base(rng.Intn(4))
			}
			qual := make([]byte, rl)
			for q := range qual {
				qual[q] = byte(20 + rng.Intn(20))
			}
			rg.Reads = append(rg.Reads, read)
			rg.Quals = append(rg.Quals, qual)
		}
		regions[i] = rg
	}
	return pairSpec{
		kernel: "phmm", pair: "lanes",
		baselineName: "phmm/lanes/scalar", optimizedName: "phmm/lanes/lane8",
		baseline: func(b *testing.B) {
			b.ReportAllocs()
			s := phmm.NewScratch()
			for i := 0; i < b.N; i++ {
				phmm.EvaluateRegionScalarInto(regions[i%len(regions)], s)
			}
		},
		optimized: func(b *testing.B) {
			b.ReportAllocs()
			s := phmm.NewScratch()
			for i := 0; i < b.N; i++ {
				phmm.EvaluateRegionInto(regions[i%len(regions)], s)
			}
		},
	}
}

func kmercntPair() pairSpec {
	rng := rand.New(rand.NewSource(22))
	const k = 17
	reads := make([]genome.Seq, 32)
	for i := range reads {
		reads[i] = genome.Random(rng, 1000)
	}
	return pairSpec{
		kernel: "kmercnt", pair: "count",
		baselineName: "kmercnt/count/scalar", optimizedName: "kmercnt/count/packed",
		baseline: func(b *testing.B) {
			b.ReportAllocs()
			tb := kmercnt.NewTable(1<<16, kmercnt.Linear)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				kmercnt.CountSeq(tb, reads[i%len(reads)], k)
			}
		},
		optimized: func(b *testing.B) {
			b.ReportAllocs()
			tb := kmercnt.NewTable(1<<16, kmercnt.Linear)
			var buf []uint64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p := seq2.PackInto(buf, reads[i%len(reads)])
				buf = p.WordsSlice()
				kmercnt.CountSeqPacked(tb, p, k)
			}
		},
	}
}

// sampledReads draws reads of length l from g with a few point
// mutations each — genome-derived reads walk long SMEM chains, the
// workload the fmi kernel exists to measure.
func sampledReads(rng *rand.Rand, g genome.Seq, n, l, muts int) []genome.Seq {
	reads := make([]genome.Seq, n)
	for i := range reads {
		start := rng.Intn(len(g) - l)
		r := g[start : start+l].Clone()
		for m := 0; m < muts; m++ {
			r[rng.Intn(l)] = genome.Base(rng.Intn(4))
		}
		reads[i] = r
	}
	return reads
}

// fmindexSmemPair measures the lock-step batched SMEM engine against
// the serial per-read walk. The 32 Mbp index's Occ checkpoints plus
// packed BWT (~64 MB) bury the L2 and the DTLB reach, so the serial
// side pays exposed miss latency on every dependent extension; the
// batched side overlaps W of those misses via software prefetch (and
// allocates nothing per anchor). One op = one sweep over the read set,
// identical work on both sides — SMEMs and lookup counts are bit-equal
// (batch_test.go). The index build takes tens of seconds; smoke runs
// exclude this pair via -kernels and never pay for it (lazy pairDefs).
func fmindexSmemPair() pairSpec {
	rng := rand.New(rand.NewSource(36))
	g := genome.Random(rng, 1<<25)
	x := fmindex.Build(g)
	reads := sampledReads(rng, g, 128, 250, 3)
	return pairSpec{
		kernel: "fmindex", pair: "smem",
		baselineName: "fmindex/smem/serial", optimizedName: "fmindex/smem/batched",
		baseline: func(b *testing.B) {
			b.ReportAllocs()
			var lk uint64
			var smems int
			for i := 0; i < b.N; i++ {
				for _, r := range reads {
					smems += len(x.FindSMEMs(r, 19, 1, &lk))
				}
			}
			_ = smems
		},
		optimized: func(b *testing.B) {
			b.ReportAllocs()
			e := fmindex.NewBatchEngine(x, 0, nil)
			var lk uint64
			var smems int
			emit := func(_ int, s []fmindex.SMEM, l uint64) {
				smems += len(s)
				lk += l
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := e.Run(reads, 19, 1, nil, emit); err != nil {
					b.Fatal(err)
				}
			}
			_ = smems
		},
	}
}

// kmercntBatchedPair measures wave-batched hash inserts against the
// plain packed counter on a table whose slot arrays (~96 MB keys +
// counts) dwarf the L2 and thrash the DTLB: every insert's primary
// probe is a random line on a random page, serial misses on the plain
// side, overlapped prefetched ones on the batched side. At L2-resident
// table sizes the pair reads ~1x — the OOO window already overlaps the
// independent insert chains — so the size is the point, mirroring the
// paper's 8 GB k-mer table regime. Tables are bit-identical
// (batched_test.go).
func kmercntBatchedPair() pairSpec {
	rng := rand.New(rand.NewSource(23))
	const k = 17
	reads := make([]genome.Seq, 512)
	packed := make([]seq2.Packed, len(reads))
	for i := range reads {
		reads[i] = genome.Random(rng, 2_000)
		packed[i] = seq2.Pack(reads[i])
	}
	return pairSpec{
		kernel: "kmercnt", pair: "batched",
		baselineName: "kmercnt/batched/plain", optimizedName: "kmercnt/batched/wave",
		baseline: func(b *testing.B) {
			b.ReportAllocs()
			tb := kmercnt.NewTable(1<<23, kmercnt.Linear)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				kmercnt.CountSeqPacked(tb, packed[i%len(packed)], k)
			}
		},
		optimized: func(b *testing.B) {
			b.ReportAllocs()
			tb := kmercnt.NewTable(1<<23, kmercnt.Linear)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				kmercnt.CountSeqPackedBatched(tb, packed[i%len(packed)], k)
			}
		},
	}
}

func fmindexPair() pairSpec {
	rng := rand.New(rand.NewSource(35))
	g := genome.Random(rng, 1<<16)
	x := fmindex.Build(g)
	positions := make([]int, 1024)
	for i := range positions {
		positions[i] = rng.Intn(x.TextLen() + 1)
	}
	return pairSpec{
		kernel: "fmindex", pair: "occ4",
		baselineName: "fmindex/occ4/scalar", optimizedName: "fmindex/occ4/packed",
		baseline: func(b *testing.B) {
			var sink int32
			for i := 0; i < b.N; i++ {
				c := x.Occ4Reference(positions[i%len(positions)])
				sink += c[0]
			}
			_ = sink
		},
		optimized: func(b *testing.B) {
			var sink int32
			for i := 0; i < b.N; i++ {
				c := x.Occ4(positions[i%len(positions)])
				sink += c[0]
			}
			_ = sink
		},
	}
}

func poaPair() pairSpec {
	rng := rand.New(rand.NewSource(44))
	windows := make([]*poa.Window, 8)
	for i := range windows {
		base := genome.Random(rng, 50+rng.Intn(150))
		w := &poa.Window{}
		for s := 0; s < 3+rng.Intn(5); s++ {
			seq := base.Clone()
			for k := 0; k < len(seq)/15+1; k++ {
				seq[rng.Intn(len(seq))] = genome.Base(rng.Intn(4))
			}
			w.Sequences = append(w.Sequences, seq)
		}
		windows[i] = w
	}
	p := poa.DefaultParams()
	return pairSpec{
		kernel: "poa", pair: "consensus",
		baselineName: "poa/consensus/fresh", optimizedName: "poa/consensus/pooled",
		baseline: func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				poa.ConsensusOf(windows[i%len(windows)], p)
			}
		},
		optimized: func(b *testing.B) {
			b.ReportAllocs()
			g := poa.New()
			for i := 0; i < b.N; i++ {
				poa.ConsensusInto(windows[i%len(windows)], p, g)
			}
		},
	}
}

// poaLanesPair measures the int16 lane-batched partial-order DP (CSR
// snapshot + SWAR match masks, 8 columns per step) against the scalar
// per-cell sweep. Both sides run the full consensus over a pooled
// graph so the pair isolates the alignment core, the windows mirroring
// Racon's geometry (a few hundred bases, a handful of noisy reads).
func poaLanesPair() pairSpec {
	rng := rand.New(rand.NewSource(45))
	windows := make([]*poa.Window, 8)
	for i := range windows {
		base := genome.Random(rng, 100+rng.Intn(200))
		w := &poa.Window{}
		for s := 0; s < 4+rng.Intn(4); s++ {
			seq := base.Clone()
			for k := 0; k < len(seq)/15+1; k++ {
				seq[rng.Intn(len(seq))] = genome.Base(rng.Intn(4))
			}
			w.Sequences = append(w.Sequences, seq)
		}
		windows[i] = w
	}
	p := poa.DefaultParams()
	return pairSpec{
		kernel: "poa", pair: "lanes",
		baselineName: "poa/lanes/scalar", optimizedName: "poa/lanes/lane8",
		baseline: func(b *testing.B) {
			b.ReportAllocs()
			g := poa.New()
			for i := 0; i < b.N; i++ {
				poa.ConsensusScalarInto(windows[i%len(windows)], p, g)
			}
		},
		optimized: func(b *testing.B) {
			b.ReportAllocs()
			g := poa.New()
			for i := 0; i < b.N; i++ {
				poa.ConsensusInto(windows[i%len(windows)], p, g)
			}
		},
	}
}

func abeaPair() pairSpec {
	rng := rand.New(rand.NewSource(53))
	model := signalsim.NewPoreModel()
	seq := genome.Random(rng, 150)
	events := signalsim.Simulate(rng, model, seq, signalsim.DefaultConfig())
	cfg := abea.DefaultConfig()
	return pairSpec{
		kernel: "abea", pair: "align",
		baselineName: "abea/align/alloc", optimizedName: "abea/align/pooled",
		baseline: func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				abea.AlignInto(model, seq, events, cfg, nil)
			}
		},
		optimized: func(b *testing.B) {
			b.ReportAllocs()
			arena := scratch.New()
			for i := 0; i < b.N; i++ {
				abea.AlignInto(model, seq, events, cfg, arena)
			}
		},
	}
}

// abeaLanesPair measures the lane-blocked band sweep (hoisted
// emission tables, quad cell blocks) against the scalar per-cell
// reference on nanopore-realistic read lengths.
func abeaLanesPair() pairSpec {
	rng := rand.New(rand.NewSource(54))
	model := signalsim.NewPoreModel()
	type rd struct {
		seq    genome.Seq
		events []signalsim.Event
	}
	reads := make([]rd, 6)
	for i := range reads {
		seq := genome.Random(rng, 800+rng.Intn(1200))
		reads[i] = rd{seq: seq, events: signalsim.Simulate(rng, model, seq, signalsim.DefaultConfig())}
	}
	cfg := abea.DefaultConfig()
	return pairSpec{
		kernel: "abea", pair: "lanes",
		baselineName: "abea/lanes/scalar", optimizedName: "abea/lanes/quad",
		baseline: func(b *testing.B) {
			b.ReportAllocs()
			arena := scratch.New()
			for i := 0; i < b.N; i++ {
				r := reads[i%len(reads)]
				abea.AlignInto(model, r.seq, r.events, cfg, arena)
			}
		},
		optimized: func(b *testing.B) {
			b.ReportAllocs()
			arena := scratch.New()
			for i := 0; i < b.N; i++ {
				r := reads[i%len(reads)]
				abea.AlignLanesInto(model, r.seq, r.events, cfg, arena)
			}
		},
	}
}

func dbgPair() pairSpec {
	rng := rand.New(rand.NewSource(63))
	regions := make([]*dbg.Region, 8)
	for i := range regions {
		ref := genome.Random(rng, 80+rng.Intn(200))
		rg := &dbg.Region{Ref: ref}
		for r := 0; r < 5+rng.Intn(10); r++ {
			lo := rng.Intn(len(ref) / 2)
			hi := lo + 30 + rng.Intn(len(ref)-lo-30)
			read := ref[lo:hi].Clone()
			for m := 0; m < len(read)/25+1; m++ {
				read[rng.Intn(len(read))] = genome.Base(rng.Intn(4))
			}
			rg.Reads = append(rg.Reads, read)
		}
		regions[i] = rg
	}
	cfg := dbg.DefaultConfig()
	return pairSpec{
		kernel: "dbg", pair: "assemble",
		baselineName: "dbg/assemble/fresh", optimizedName: "dbg/assemble/pooled",
		baseline: func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				dbg.AssembleRegion(regions[i%len(regions)], cfg)
			}
		},
		optimized: func(b *testing.B) {
			b.ReportAllocs()
			a := dbg.NewAssembler()
			for i := 0; i < b.N; i++ {
				a.AssembleRegion(regions[i%len(regions)], cfg)
			}
		},
	}
}
