package main

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/scenario"
	"repro/internal/scratch"
)

// Scenario pairs measure whole pipelines, not single kernels: the
// baseline is the staged reference executor (each stage runs to
// completion over materialized intermediates), the optimized side the
// fused streaming executor (bounded channels, all stage pools
// concurrent). The pair speedup is therefore exactly the value of
// stage overlap plus non-materialization, with both sides running the
// same stage functions on the same warm arenas.
//
// Every measured run's digest is checked against a staged reference
// digest computed at build time; a mismatch is a correctness bug in
// the fused executor and fails the whole bench run (exit 1), because a
// fast-but-wrong pipeline must never land in a committed report.

// scenarioBenchParams shrinks each scenario to bench scale: one op
// should sit in the hundreds of milliseconds so -reps runs finish in
// minutes, while keeping every stage's work large enough that overlap
// is measurable.
var scenarioBenchParams = map[string]scenario.Params{
	"variantcalling": {"ref_len": 8_000, "coverage": 20, "min_recall": 0.2},
	"methylation":    {},
	"metagenomics":   {"total_reads": 300},
}

// scenarioMismatches collects digest-identity violations observed
// while measuring; main fails the run when any were recorded.
var scenarioMismatches []string

// scenarioPairDefs returns one before/after pair per registered
// scenario. Threads is the fused executor's total worker concurrency —
// on hosts without that many cores the compare and trend gates report
// the pair as skipped, never as passed.
func scenarioPairDefs() []pairDef {
	var defs []pairDef
	for _, name := range scenario.Names() {
		name := name
		defs = append(defs, pairDef{"scenario", func() pairSpec { return scenarioPair(name) }})
	}
	return defs
}

// benchPipeline builds a scenario at bench scale.
func benchPipeline(name string) (*scenario.Def, *scenario.Pipeline, error) {
	def := scenario.Get(name)
	if def == nil {
		return nil, nil, fmt.Errorf("scenario %q not registered", name)
	}
	p := def.Params.Clone()
	for k, v := range scenarioBenchParams[name] {
		p[k] = v
	}
	pipe, err := def.Build(p)
	return def, pipe, err
}

func scenarioPair(name string) pairSpec {
	_, pipe, err := benchPipeline(name)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gbench-bench: scenario %s: %v\n", name, err)
		os.Exit(2)
	}
	opt := scenario.Options{Pool: scratch.NewPool()}

	// Reference digest: one staged run before any measurement. Every
	// timed run on either side must reproduce it bit for bit.
	ref, err := scenario.RunStaged(context.Background(), name, pipe, opt)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gbench-bench: scenario %s reference run: %v\n", name, err)
		os.Exit(2)
	}
	check := func(mode string, res *scenario.Result, err error) {
		if err != nil {
			scenarioMismatches = append(scenarioMismatches,
				fmt.Sprintf("scenario/%s %s run failed: %v", name, mode, err))
			return
		}
		if res.Digest != ref.Digest {
			scenarioMismatches = append(scenarioMismatches,
				fmt.Sprintf("scenario/%s %s digest %016x != staged reference %016x",
					name, mode, res.Digest, ref.Digest))
		}
	}

	return pairSpec{
		kernel: "scenario", pair: name, threads: pipe.FusedWorkers(opt),
		baselineName:  "scenario/" + name + "/staged",
		optimizedName: "scenario/" + name + "/fused",
		baseline: func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := scenario.RunStaged(context.Background(), name, pipe, opt)
				check("staged", res, err)
			}
		},
		optimized: func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := scenario.RunFused(context.Background(), name, pipe, opt)
				check("fused", res, err)
			}
		},
	}
}

// writeScenarioTrace runs every registered scenario fused once under
// an observer and writes the span trace as NDJSON — the file
// gbench-report -scenarios renders as per-stage tables.
func writeScenarioTrace(path string) error {
	o := obs.NewObserver()
	ctx := obs.With(context.Background(), o)
	pool := scratch.NewPool()
	for _, name := range scenario.Names() {
		_, pipe, err := benchPipeline(name)
		if err != nil {
			return fmt.Errorf("scenario %s: %w", name, err)
		}
		res, err := scenario.RunFused(ctx, name, pipe, scenario.Options{Pool: pool})
		if err != nil {
			return fmt.Errorf("scenario %s: %w", name, err)
		}
		fmt.Fprintf(os.Stderr, "trace %-16s %d outputs, overlap %.2f, digest %016x\n",
			"scenario/"+name, len(res.Final), res.Overlap, res.Digest)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	meta := core.RunMeta{
		Type:       "meta",
		Schema:     core.MetricsSchemaVersion,
		Suite:      "genomicsbench-go",
		Size:       "scenario",
		Threads:    runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		OS:         runtime.GOOS,
		Arch:       runtime.GOARCH,
		Start:      time.Now().UTC().Format(time.RFC3339),
	}
	return core.WriteTraceNDJSON(f, meta, o)
}
