// Command gbench-data generates the suite's synthetic datasets as
// standard files: a reference FASTA, donor-haplotype truth VCF, short-
// and long-read FASTQ, and the raw pore-signal levels as a text table —
// everything a kernel run needs, reproducible from a seed.
//
// Usage:
//
//	gbench-data -out ./data -ref-len 100000 -short-reads 1000 -long-reads 100 -seed 42
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"

	"repro/internal/genome"
	"repro/internal/readsim"
	"repro/internal/simio"
)

func main() {
	var (
		outDir     = flag.String("out", "data", "output directory")
		refLen     = flag.Int("ref-len", 100_000, "reference length in bases")
		shortReads = flag.Int("short-reads", 1000, "number of short reads")
		longReads  = flag.Int("long-reads", 100, "number of long reads")
		coverage   = flag.Float64("coverage", 0, "if > 0, emit donor coverage reads instead of -short-reads")
		seed       = flag.Int64("seed", 42, "generator seed")
	)
	flag.Parse()

	if err := run(*outDir, *refLen, *shortReads, *longReads, *coverage, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "gbench-data:", err)
		os.Exit(1)
	}
}

func run(outDir string, refLen, nShort, nLong int, coverage float64, seed int64) error {
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(seed))
	ref := genome.NewReference(rng, "chr1", refLen, 0.1)
	donor := genome.PlantVariants(rng, ref, 0.001, 0.0002)

	// Reference FASTA.
	if err := writeFile(outDir, "reference.fa", func(f *os.File) error {
		return simio.WriteFasta(f, []simio.FastaRecord{{Name: ref.Name, Seq: ref.Seq}})
	}); err != nil {
		return err
	}

	// Truth VCF for the donor.
	var vcf []simio.VCFRecord
	for _, v := range donor.Variants {
		gt := simio.HomAlt
		if v.Het {
			gt = simio.Het
		}
		rec := simio.VCFRecord{Chrom: ref.Name, Pos: v.Pos, Qual: 60, Genotype: gt}
		switch v.Kind {
		case genome.SNV:
			rec.Ref, rec.Alt = v.Ref, v.Alt
		case genome.Insertion:
			anchor := ref.Seq[v.Pos : v.Pos+1]
			rec.Ref = anchor
			rec.Alt = append(anchor.Clone(), v.Alt...)
		case genome.Deletion:
			anchorPos := v.Pos - 1
			if anchorPos < 0 {
				continue
			}
			anchor := ref.Seq[anchorPos : anchorPos+1]
			rec.Pos = anchorPos
			rec.Ref = append(anchor.Clone(), v.Ref...)
			rec.Alt = anchor
		}
		vcf = append(vcf, rec)
	}
	if err := writeFile(outDir, "truth.vcf", func(f *os.File) error {
		return simio.WriteVCF(f, "donor", vcf)
	}); err != nil {
		return err
	}

	// Short reads.
	sim := readsim.New(seed + 1)
	var short []readsim.Read
	if coverage > 0 {
		short = sim.CoverageReads(donor, coverage, readsim.DefaultShort(), "sr")
	} else {
		short = sim.ShortReads(donor.Haps[0], 0, nShort, readsim.DefaultShort(), "sr")
	}
	if err := writeFile(outDir, "short_reads.fastq", func(f *os.File) error {
		recs := make([]simio.FastqRecord, len(short))
		for i, r := range short {
			recs[i] = simio.FastqRecord{Name: r.Name, Seq: r.Seq, Qual: r.Qual}
		}
		return simio.WriteFastq(f, recs)
	}); err != nil {
		return err
	}

	// Long reads.
	long := sim.LongReads(donor.Haps[0], 0, nLong, readsim.DefaultLong(), "lr")
	if err := writeFile(outDir, "long_reads.fastq", func(f *os.File) error {
		recs := make([]simio.FastqRecord, len(long))
		for i, r := range long {
			recs[i] = simio.FastqRecord{Name: r.Name, Seq: r.Seq, Qual: r.Qual}
		}
		return simio.WriteFastq(f, recs)
	}); err != nil {
		return err
	}

	fmt.Printf("wrote %s: reference (%d bp), %d truth variants, %d short reads, %d long reads\n",
		outDir, refLen, len(vcf), len(short), len(long))
	return nil
}

func writeFile(dir, name string, fn func(*os.File) error) error {
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
