// Command gbench-map maps long reads to a reference: minimizer
// seeding + chaining (the chain kernel) place each read, banded
// Smith-Waterman traceback (the bsw kernel) produces base-level
// CIGARs, and the output is SAM. Input files may be gzipped.
//
// A reads file truncated mid-stream (e.g. an interrupted transfer of a
// .fastq.gz) degrades gracefully: the complete records are mapped and
// a warning notes how much was lost. A truncated reference is fatal —
// mapping against half a genome would silently misplace reads.
//
// Usage:
//
//	gbench-map -ref ref.fa -reads reads.fastq -out out.sam
//	gbench-map -ref ref.fa -reads reads.fastq -faults "truncate:fastq"
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"repro/internal/bsw"
	"repro/internal/chain"
	"repro/internal/faultinject"
	"repro/internal/simio"
)

func main() {
	var (
		refPath   = flag.String("ref", "", "reference FASTA (.fa or .fa.gz)")
		readsPath = flag.String("reads", "", "reads FASTQ (.fastq or .fastq.gz)")
		outPath   = flag.String("out", "-", "output SAM path, '-' for stdout")
		kFlag     = flag.Int("k", 15, "minimizer k-mer size")
		wFlag     = flag.Int("w", 10, "minimizer window")
		band      = flag.Int("band", 200, "alignment band width")
		faults    = flag.String("faults", "", `fault plan for the input readers, e.g. "truncate:fastq:0.5"`)
		faultSeed = flag.Int64("fault-seed", 1, "seed for deterministic fault firing")
	)
	flag.Parse()
	if *refPath == "" || *readsPath == "" {
		fmt.Fprintln(os.Stderr, "gbench-map: -ref and -reads are required")
		os.Exit(2)
	}
	if *faults != "" {
		plan, err := faultinject.Parse(*faults, *faultSeed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gbench-map:", err)
			os.Exit(2)
		}
		faultinject.Arm(plan)
		defer faultinject.Disarm()
	}
	if err := run(*refPath, *readsPath, *outPath, *kFlag, *wFlag, *band); err != nil {
		fmt.Fprintln(os.Stderr, "gbench-map:", err)
		os.Exit(1)
	}
}

func run(refPath, readsPath, outPath string, k, w, band int) error {
	rf, err := os.Open(refPath)
	if err != nil {
		return err
	}
	defer rf.Close()
	refs, err := simio.ReadFastaAuto(faultinject.WrapReader("fasta", rf))
	if err != nil {
		// A partial reference is never usable: fail rather than map
		// reads onto a prefix of the genome.
		return err
	}
	if len(refs) == 0 {
		return fmt.Errorf("no reference sequences in %s", refPath)
	}
	ref := refs[0]

	qf, err := os.Open(readsPath)
	if err != nil {
		return err
	}
	defer qf.Close()
	reads, err := simio.ReadFastqAuto(faultinject.WrapReader("fastq", qf))
	if err != nil {
		var se *simio.StreamError
		if !errors.As(err, &se) || len(reads) == 0 {
			return err
		}
		// Truncated reads file: map what decoded cleanly.
		fmt.Fprintf(os.Stderr, "gbench-map: warning: %v; continuing with %d complete read(s)\n", err, len(reads))
	}

	mapper := chain.NewMapper(ref.Seq, k, w, 100)
	ccfg := chain.DefaultConfig()
	params := bsw.DefaultParams()
	params.Band = band
	params.ZDrop = 0

	var alignments []*simio.Alignment
	mapped := 0
	for _, r := range reads {
		maps := mapper.Map(r.Seq, ccfg)
		if len(maps) == 0 {
			continue
		}
		best := maps[0]
		query := r.Seq
		if best.Reverse {
			query = r.Seq.ReverseComplement()
		}
		lo := best.RefStart - 100
		if lo < 0 {
			lo = 0
		}
		hi := best.RefEnd + 100
		if hi > len(ref.Seq) {
			hi = len(ref.Seq)
		}
		tr := bsw.AlignTrace(query, ref.Seq[lo:hi], params)
		if len(tr.Cigar) == 0 {
			continue
		}
		cig := tr.Cigar
		if tr.QBeg > 0 {
			cig = append(simio.Cigar{{Len: tr.QBeg, Op: simio.CigarSoftClip}}, cig...)
		}
		if tail := len(query) - tr.QEnd; tail > 0 {
			cig = append(cig, simio.CigarElem{Len: tail, Op: simio.CigarSoftClip})
		}
		qual := r.Qual
		if best.Reverse {
			qual = make([]byte, len(r.Qual))
			for i, q := range r.Qual {
				qual[len(r.Qual)-1-i] = q
			}
		}
		aln := &simio.Alignment{
			ReadName: r.Name,
			RefName:  ref.Name,
			Pos:      lo + tr.TBeg,
			MapQ:     60,
			Cigar:    cig,
			Seq:      query,
			Qual:     qual,
			Reverse:  best.Reverse,
		}
		if err := aln.Validate(); err != nil {
			continue
		}
		alignments = append(alignments, aln)
		mapped++
	}

	out := os.Stdout
	if outPath != "-" {
		f, err := os.Create(outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	if err := simio.WriteSAM(out, refs, alignments); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "gbench-map: mapped %d/%d reads\n", mapped, len(reads))
	return nil
}
