// Command gbench-report renders a Markdown reproduction report: every
// paper table/figure regenerated, side by side with the paper's
// published values where the paper prints them, ready to paste into
// EXPERIMENTS.md or a CI artifact.
//
// With -metrics it instead (or, with -full, additionally) renders the
// tables recorded in a gbench -metrics NDJSON file: per-kernel
// outcomes, scheduler/resilience metrics, fault accounting and runtime
// samples. Malformed NDJSON is a hard error (exit 1), which is what CI
// leans on to validate metrics files.
//
// With -history it renders the BENCH_HISTORY.ndjson speedup
// trajectories: one table per host class, a sparkline per pair with
// first/best/latest speedup and the drift off best-ever, so a quiet
// slide across PRs is visible at a glance instead of buried in
// individual BENCH_PRn.json diffs.
//
// Usage:
//
//	gbench-report > report.md
//	gbench -bench all -metrics out.ndjson && gbench-report -metrics out.ndjson
//	gbench-report -history BENCH_HISTORY.ndjson
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/benchjson"
	"repro/internal/core"
	"repro/internal/obs"
)

func main() {
	var (
		size        = flag.String("size", "small", "dataset size for measured tables")
		seed        = flag.Int64("seed", 42, "dataset seed")
		metricsPath = flag.String("metrics", "", "render tables from a gbench -metrics NDJSON file")
		historyPath = flag.String("history", "", "render speedup trend tables from a BENCH_HISTORY.ndjson file")
		scenPath    = flag.String("scenarios", "", "render per-stage scenario pipeline tables from a gbench-bench -scenario-trace NDJSON file")
		full        = flag.Bool("full", false, "with -metrics/-history/-scenarios, also regenerate the full paper report")
	)
	flag.Parse()
	sz, err := core.ParseSize(*size)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	if *metricsPath != "" {
		if err := renderMetrics(*metricsPath); err != nil {
			fmt.Fprintf(os.Stderr, "gbench-report: %v\n", err)
			os.Exit(1)
		}
		if !*full && *historyPath == "" {
			return
		}
	}
	if *historyPath != "" {
		if err := renderHistory(*historyPath); err != nil {
			fmt.Fprintf(os.Stderr, "gbench-report: %v\n", err)
			os.Exit(1)
		}
		if !*full && *scenPath == "" {
			return
		}
	}
	if *scenPath != "" {
		if err := renderScenarios(*scenPath); err != nil {
			fmt.Fprintf(os.Stderr, "gbench-report: %v\n", err)
			os.Exit(1)
		}
		if !*full {
			return
		}
	}

	fmt.Printf("# GenomicsBench-Go reproduction report\n\n")
	fmt.Printf("Generated %s, dataset size %s, seed %d.\n\n",
		time.Now().UTC().Format(time.RFC3339), sz, *seed)

	// Headline comparisons with the paper's published values.
	gpu := core.RunGPUKernels(*seed)
	a, n := gpu[0], gpu[1]
	profiles := core.MemoryProfiles(*seed)
	byName := map[string]core.MemProfile{}
	for _, p := range profiles {
		byName[p.Name] = p
	}

	fmt.Println("## Headline comparison")
	fmt.Println()
	fmt.Println("| experiment | paper | this run |")
	fmt.Println("|---|---|---|")
	row := func(name, paper string, v float64, pct bool) {
		if pct {
			fmt.Printf("| %s | %s | %.1f%% |\n", name, paper, 100*v)
		} else {
			fmt.Printf("| %s | %s | %.1f |\n", name, paper, v)
		}
	}
	row("abea warp efficiency", "75.09%", a.Metrics.WarpEfficiency(), true)
	row("abea occupancy", "31.41%", a.Occupancy, true)
	row("abea global load efficiency", "25.5%", a.Metrics.GlobalLoadEfficiency(), true)
	row("nn-base warp efficiency", "100%", n.Metrics.WarpEfficiency(), true)
	row("nn-base occupancy", "88.47%", n.Occupancy, true)
	row("fmi BPKI", "66.8", byName["fmi"].Report.BPKI, false)
	row("kmer-cnt BPKI", "484.1", byName["kmer-cnt"].Report.BPKI, false)
	row("fmi stall cycles", "41.5%", byName["fmi"].Report.StallFraction, true)
	row("kmer-cnt stall cycles", "69.2%", byName["kmer-cnt"].Report.StallFraction, true)
	row("grm retiring slots", "87.7%", byName["grm"].TopDown.Retiring, true)
	fmt.Println()

	// Full tables as fenced blocks.
	fmt.Println("## Regenerated tables and figures")
	fmt.Println()
	for _, t := range core.AllTables(sz, *seed) {
		title := strings.SplitN(t.Title, ":", 2)[0]
		fmt.Printf("### %s\n\n```\n%s```\n\n", title, t.String())
	}
}

// renderHistory renders the bench-history trend tables: per host
// class, each pair's speedup sparkline with first/best/latest and the
// drift off best-ever, then the trend gate's verdict on the newest
// record. The rendering is read-only — the gate that FAILS CI lives in
// gbench-bench -compare -history; this is the human-facing view.
func renderHistory(path string) error {
	records, dropped, err := benchjson.ReadHistoryFile(path)
	if err != nil {
		return err
	}
	if len(records) == 0 {
		return fmt.Errorf("%s holds no history records", path)
	}
	fmt.Printf("# Bench history trends\n\n")
	fmt.Printf("%d records in %s", len(records), path)
	if dropped {
		fmt.Printf(" (one truncated trailing record dropped)")
	}
	first, last := records[0], records[len(records)-1]
	fmt.Printf(", %s -> %s.\n\n", labelOr(first, "#1"), labelOr(last, fmt.Sprintf("#%d", len(records))))

	trends := benchjson.Trends(records)
	byHost := map[string][]*benchjson.Trend{}
	var hosts []string
	for _, t := range trends {
		if _, ok := byHost[t.HostKey]; !ok {
			hosts = append(hosts, t.HostKey)
		}
		byHost[t.HostKey] = append(byHost[t.HostKey], t)
	}
	// Latest recorded SIMD stamp per host class: records measured with
	// the SIMD tier overridden down are not comparable to full-width
	// ones, so the stamp is surfaced next to each host's table.
	simdOf := map[string]string{}
	for _, r := range records {
		if r.Host != nil && r.Host.SIMD != "" {
			simdOf[r.Host.Key()] = r.Host.SIMD
		}
	}
	for _, hk := range hosts {
		name := hk
		if name == "" {
			name = "unknown host"
		}
		fmt.Printf("## Host %s\n\n", name)
		if simd := simdOf[hk]; simd != "" {
			fmt.Printf("SIMD: `%s` (latest record)\n\n", simd)
		}
		// Scenario pipeline pairs (fused vs staged whole-pipeline runs)
		// measure a different thing than kernel micro pairs, so they get
		// their own table below the kernel one.
		var kernelTrends, scenarioTrends []*benchjson.Trend
		for _, t := range byHost[hk] {
			if t.Kernel == "scenario" {
				scenarioTrends = append(scenarioTrends, t)
			} else {
				kernelTrends = append(kernelTrends, t)
			}
		}
		trendTable(kernelTrends)
		if len(scenarioTrends) > 0 {
			fmt.Printf("### Scenario pipelines (fused vs staged)\n\n")
			trendTable(scenarioTrends)
		}
	}

	v := benchjson.TrendGate(records, benchjson.TrendOptions{})
	fmt.Println("## Trend gate on latest record")
	fmt.Println()
	if len(v.Failures) == 0 && len(v.Warnings) == 0 {
		fmt.Println("No drift beyond tolerance.")
	}
	for _, f := range v.Failures {
		fmt.Printf("- **FAIL** %s\n", f)
	}
	for _, w := range v.Warnings {
		fmt.Printf("- WARN %s\n", w)
	}
	for _, s := range v.Skipped {
		fmt.Printf("- skipped %s\n", s)
	}
	fmt.Println()
	return nil
}

// trendTable renders one group of trends as the sparkline table.
func trendTable(trends []*benchjson.Trend) {
	fmt.Println("| pair | trend | first | best | latest | drift |")
	fmt.Println("|---|---|---|---|---|---|")
	for _, t := range trends {
		pair := t.Kernel + "/" + t.Pair
		if t.Skipped {
			fmt.Printf("| %s | _skipped: needs %d cores_ | | | | |\n", pair, t.Threads)
			continue
		}
		fmt.Printf("| %s | `%s` | %.2fx | %.2fx | %.2fx | %.0f%% |\n",
			pair, benchjson.Sparkline(t.Speedups), t.First(), t.Best(), t.Last(), t.DriftPct())
	}
	fmt.Println()
}

func labelOr(r *benchjson.Report, fallback string) string {
	if r.Label != "" {
		return r.Label
	}
	return fallback
}

// renderScenarios parses a gbench-bench -scenario-trace NDJSON file
// and renders one per-stage table per scenario run: each pipeline root
// span ("scenario/<name>/<mode>") becomes a section whose rows are its
// child stage spans, with the executor's occupancy/queue annotations
// as columns. Any malformed line fails the whole report.
func renderScenarios(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	mf, err := core.ReadMetricsNDJSON(f)
	if err != nil {
		return fmt.Errorf("parsing %s: %w", path, err)
	}
	type rootRun struct {
		rec    obs.SpanRecord
		stages []obs.SpanRecord
	}
	var roots []*rootRun
	byID := map[uint64]*rootRun{}
	for _, s := range mf.Spans {
		if s.Parent == 0 && strings.HasPrefix(s.Name, "scenario/") {
			r := &rootRun{rec: s}
			roots = append(roots, r)
			byID[s.ID] = r
		}
	}
	for _, s := range mf.Spans {
		if r, ok := byID[s.Parent]; ok {
			r.stages = append(r.stages, s)
		}
	}
	if len(roots) == 0 {
		return fmt.Errorf("%s holds no scenario pipeline spans", path)
	}
	fmt.Printf("# Scenario pipeline report\n\n")
	if m := mf.Meta; m != nil {
		fmt.Printf("Trace started %s on %s/%s (%s, GOMAXPROCS %d).\n\n",
			m.Start, m.OS, m.Arch, m.GoVersion, m.GOMAXPROCS)
	}
	annot := func(s obs.SpanRecord, key string) string {
		if v, ok := s.Annots[key]; ok {
			return v
		}
		return "-"
	}
	for _, r := range roots {
		fmt.Printf("## %s\n\n", r.rec.Name)
		fmt.Printf("%.1f ms end to end, %s outputs, stage-overlap ratio %s, status %s.\n\n",
			float64(r.rec.DurNs)/1e6, annot(r.rec, "items"), annot(r.rec, "overlap_ratio"), r.rec.Status)
		fmt.Println("| stage | workers | in | out | busy (ms) | wall (ms) | occupancy | queue peak |")
		fmt.Println("|---|---|---|---|---|---|---|---|")
		for _, s := range r.stages {
			name := s.Name
			if i := strings.LastIndexByte(name, '/'); i >= 0 {
				name = name[i+1:]
			}
			fmt.Printf("| %s | %s | %s | %s | %s | %s | %s | %s |\n",
				name, annot(s, "workers"), annot(s, "items_in"), annot(s, "items_out"),
				annot(s, "busy_ms"), annot(s, "wall_ms"), annot(s, "occupancy"), annot(s, "queue_peak"))
		}
		fmt.Println()
	}
	return nil
}

// renderMetrics parses a gbench -metrics NDJSON file and renders its
// tables. Any malformed line fails the whole report.
func renderMetrics(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	mf, err := core.ReadMetricsNDJSON(f)
	if err != nil {
		return fmt.Errorf("parsing %s: %w", path, err)
	}
	if len(mf.Kernels) == 0 {
		return fmt.Errorf("%s holds no kernel records", path)
	}
	fmt.Printf("# Suite metrics report\n\n")
	if m := mf.Meta; m != nil {
		fmt.Printf("Run started %s on %s/%s (%s, GOMAXPROCS %d)",
			m.Start, m.OS, m.Arch, m.GoVersion, m.GOMAXPROCS)
		if m.Faults != "" {
			fmt.Printf(", fault plan `%s`", m.Faults)
		}
		fmt.Printf(".\n\n")
	}
	for _, t := range core.MetricsTables(mf) {
		title := strings.SplitN(t.Title, " (", 2)[0]
		fmt.Printf("## %s\n\n```\n%s```\n\n", title, t.String())
	}
	return nil
}
