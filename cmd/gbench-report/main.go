// Command gbench-report renders a Markdown reproduction report: every
// paper table/figure regenerated, side by side with the paper's
// published values where the paper prints them, ready to paste into
// EXPERIMENTS.md or a CI artifact.
//
// With -metrics it instead (or, with -full, additionally) renders the
// tables recorded in a gbench -metrics NDJSON file: per-kernel
// outcomes, scheduler/resilience metrics, fault accounting and runtime
// samples. Malformed NDJSON is a hard error (exit 1), which is what CI
// leans on to validate metrics files.
//
// Usage:
//
//	gbench-report > report.md
//	gbench -bench all -metrics out.ndjson && gbench-report -metrics out.ndjson
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/core"
)

func main() {
	var (
		size        = flag.String("size", "small", "dataset size for measured tables")
		seed        = flag.Int64("seed", 42, "dataset seed")
		metricsPath = flag.String("metrics", "", "render tables from a gbench -metrics NDJSON file")
		full        = flag.Bool("full", false, "with -metrics, also regenerate the full paper report")
	)
	flag.Parse()
	sz, err := core.ParseSize(*size)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	if *metricsPath != "" {
		if err := renderMetrics(*metricsPath); err != nil {
			fmt.Fprintf(os.Stderr, "gbench-report: %v\n", err)
			os.Exit(1)
		}
		if !*full {
			return
		}
	}

	fmt.Printf("# GenomicsBench-Go reproduction report\n\n")
	fmt.Printf("Generated %s, dataset size %s, seed %d.\n\n",
		time.Now().UTC().Format(time.RFC3339), sz, *seed)

	// Headline comparisons with the paper's published values.
	gpu := core.RunGPUKernels(*seed)
	a, n := gpu[0], gpu[1]
	profiles := core.MemoryProfiles(*seed)
	byName := map[string]core.MemProfile{}
	for _, p := range profiles {
		byName[p.Name] = p
	}

	fmt.Println("## Headline comparison")
	fmt.Println()
	fmt.Println("| experiment | paper | this run |")
	fmt.Println("|---|---|---|")
	row := func(name, paper string, v float64, pct bool) {
		if pct {
			fmt.Printf("| %s | %s | %.1f%% |\n", name, paper, 100*v)
		} else {
			fmt.Printf("| %s | %s | %.1f |\n", name, paper, v)
		}
	}
	row("abea warp efficiency", "75.09%", a.Metrics.WarpEfficiency(), true)
	row("abea occupancy", "31.41%", a.Occupancy, true)
	row("abea global load efficiency", "25.5%", a.Metrics.GlobalLoadEfficiency(), true)
	row("nn-base warp efficiency", "100%", n.Metrics.WarpEfficiency(), true)
	row("nn-base occupancy", "88.47%", n.Occupancy, true)
	row("fmi BPKI", "66.8", byName["fmi"].Report.BPKI, false)
	row("kmer-cnt BPKI", "484.1", byName["kmer-cnt"].Report.BPKI, false)
	row("fmi stall cycles", "41.5%", byName["fmi"].Report.StallFraction, true)
	row("kmer-cnt stall cycles", "69.2%", byName["kmer-cnt"].Report.StallFraction, true)
	row("grm retiring slots", "87.7%", byName["grm"].TopDown.Retiring, true)
	fmt.Println()

	// Full tables as fenced blocks.
	fmt.Println("## Regenerated tables and figures")
	fmt.Println()
	for _, t := range core.AllTables(sz, *seed) {
		title := strings.SplitN(t.Title, ":", 2)[0]
		fmt.Printf("### %s\n\n```\n%s```\n\n", title, t.String())
	}
}

// renderMetrics parses a gbench -metrics NDJSON file and renders its
// tables. Any malformed line fails the whole report.
func renderMetrics(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	mf, err := core.ReadMetricsNDJSON(f)
	if err != nil {
		return fmt.Errorf("parsing %s: %w", path, err)
	}
	if len(mf.Kernels) == 0 {
		return fmt.Errorf("%s holds no kernel records", path)
	}
	fmt.Printf("# Suite metrics report\n\n")
	if m := mf.Meta; m != nil {
		fmt.Printf("Run started %s on %s/%s (%s, GOMAXPROCS %d)",
			m.Start, m.OS, m.Arch, m.GoVersion, m.GOMAXPROCS)
		if m.Faults != "" {
			fmt.Printf(", fault plan `%s`", m.Faults)
		}
		fmt.Printf(".\n\n")
	}
	for _, t := range core.MetricsTables(mf) {
		title := strings.SplitN(t.Title, " (", 2)[0]
		fmt.Printf("## %s\n\n```\n%s```\n\n", title, t.String())
	}
	return nil
}
