// Assembly and polishing: the long-read de novo path.
//
// Noisy ONT-like long reads are simulated from an unknown genome;
// pairwise overlaps are detected with minimizer anchors and the
// chaining DP (chain kernel), window consensus is computed with
// partial-order alignment (spoa kernel, as Racon does), and the
// consensus windows are validated against the raw signal with adaptive
// banded event alignment (abea kernel, as Nanopolish does).
//
// Run: go run ./examples/assembly-polish
package main

import (
	"fmt"
	"math/rand"

	"repro/internal/abea"
	"repro/internal/chain"
	"repro/internal/genome"
	"repro/internal/nnbase"
	"repro/internal/poa"
	"repro/internal/readsim"
	"repro/internal/signalsim"
)

const (
	genomeLen = 20_000
	nReads    = 60
	windowLen = 300
)

func main() {
	rng := rand.New(rand.NewSource(21))
	truth := genome.NewReference(rng, "novel-species", genomeLen, 0.05)

	// 1. Long noisy reads.
	sim := readsim.New(22)
	cfg := readsim.DefaultLong()
	cfg.MeanLength = 4000
	cfg.ErrorRate = 0.08
	reads := sim.LongReads(truth.Seq, -1, nReads, cfg, "ont")
	fmt.Printf("simulated %d long reads from a %d bp genome\n", len(reads), genomeLen)

	// 2. Overlap detection on a sample of read pairs.
	var overlaps, comparisons int
	for i := 0; i+1 < len(reads); i += 2 {
		a, b := reads[i], reads[i+1]
		if a.Reverse || b.Reverse {
			continue // keep the demo on one strand
		}
		anchors := chain.SharedAnchors(a.Seq, b.Seq, 15, 10, 100)
		chains, comps := chain.ChainAnchors(anchors, chain.DefaultConfig())
		comparisons += int(comps)
		trueOverlap := intervalOverlap(a.RefPos, a.RefEnd, b.RefPos, b.RefEnd)
		if len(chains) > 0 && trueOverlap > 500 {
			overlaps++
		}
	}
	fmt.Printf("chaining found %d overlapping pairs (%d anchor comparisons)\n", overlaps, comparisons)

	// 3. Window consensus with POA over reads covering each window.
	var polished, windowsCovered int
	var totalErrBefore, totalErrAfter int
	for w := 0; w*windowLen+windowLen <= genomeLen; w += 8 { // sample windows
		lo, hi := w*windowLen, w*windowLen+windowLen
		win := &poa.Window{}
		var worstErr int
		for _, r := range reads {
			if r.Reverse || r.RefPos > lo || r.RefEnd < hi {
				continue
			}
			// Cut the window out of the read using true coordinates
			// (a real pipeline maps via the chain step's alignments).
			frac := func(p int) int { return (p - r.RefPos) * len(r.Seq) / (r.RefEnd - r.RefPos) }
			a, b := frac(lo), frac(hi)
			if a < 0 || b > len(r.Seq) || b-a < windowLen/2 {
				continue
			}
			chunk := r.Seq[a:b]
			win.Sequences = append(win.Sequences, chunk)
			if e := nnbase.EditDistance(chunk, truth.Seq[lo:hi]); e > worstErr {
				worstErr = e
			}
		}
		if len(win.Sequences) < 4 {
			continue
		}
		windowsCovered++
		cons, _ := poa.ConsensusOf(win, poa.DefaultParams())
		errAfter := nnbase.EditDistance(cons, truth.Seq[lo:hi])
		totalErrBefore += worstErr
		totalErrAfter += errAfter
		if errAfter < worstErr {
			polished++
		}
	}
	fmt.Printf("POA consensus improved %d/%d windows (edit distance %d -> %d)\n",
		polished, windowsCovered, totalErrBefore, totalErrAfter)

	// 4. Signal-level validation: the consensus of a window should
	// score better than the raw read chunk under event alignment.
	pore := signalsim.NewPoreModel()
	seg := truth.Seq[0:1000]
	events := signalsim.Simulate(rng, pore, seg, signalsim.DefaultConfig())
	good := abea.Align(pore, seg, events, abea.DefaultConfig())
	noisy := seg.Clone()
	for i := 0; i < 60; i++ {
		noisy[rng.Intn(len(noisy))] = genome.Base(rng.Intn(4))
	}
	bad := abea.Align(pore, noisy, events, abea.DefaultConfig())
	fmt.Printf("abea validation: true sequence %.0f vs corrupted %.0f (higher is better)\n",
		good.Score, bad.Score)
	if good.Score <= bad.Score {
		fmt.Println("WARNING: event alignment did not prefer the true sequence")
	}
}

func intervalOverlap(a0, a1, b0, b1 int) int {
	lo, hi := a0, a1
	if b0 > lo {
		lo = b0
	}
	if b1 < hi {
		hi = b1
	}
	if hi < lo {
		return 0
	}
	return hi - lo
}
