// Methylation detection: the application ABEA serves in Nanopolish.
//
// A CpG-island region is "sequenced" molecule by molecule through the
// pore model (alternating methylated and unmethylated molecules); each
// molecule's raw signal streams through event simulation and
// adaptive-banded event-alignment methylation calling (abea kernel).
// The pipeline lives in the scenario registry (internal/scenario,
// "methylation"); this example runs it fused and staged and shows the
// digests agree.
//
// Run: go run ./examples/methylation
package main

import (
	"context"
	"fmt"
	"os"

	"repro/internal/scenario"
	"repro/internal/scratch"
)

func main() {
	def := scenario.Get("methylation")
	p := def.Params.Clone()
	p["molecules"] = 2 // demo scale: one methylated, one unmethylated read
	pipe, err := def.Build(p)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("%s: %v\n\n", def.Title, def.Stages)

	opt := scenario.Options{Pool: scratch.NewPool()}
	staged, err := scenario.RunStaged(context.Background(), def.Name, pipe, opt)
	if err != nil {
		fmt.Fprintln(os.Stderr, "staged:", err)
		os.Exit(1)
	}
	fused, err := scenario.RunFused(context.Background(), def.Name, pipe, opt)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fused:", err)
		os.Exit(1)
	}
	fmt.Print(fused.Table())
	fmt.Printf("staged reference: %.1f ms, digest %016x (match: %v)\n\n",
		float64(staged.Elapsed.Nanoseconds())/1e6, staged.Digest, staged.Digest == fused.Digest)
	fmt.Println(pipe.Summary(fused.Final))
}
