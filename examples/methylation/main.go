// Methylation detection: the application ABEA serves in Nanopolish.
//
// A genome with a known set of methylated CpG sites is "sequenced"
// through the pore model twice — once methylated, once not — and every
// CpG site is called by comparing adaptive-banded event-alignment
// likelihoods under the unmethylated versus 5mC pore models. The
// example reports per-site accuracy against the planted truth.
//
// Run: go run ./examples/methylation
package main

import (
	"fmt"
	"math/rand"

	"repro/internal/abea"
	"repro/internal/genome"
	"repro/internal/signalsim"
)

func main() {
	rng := rand.New(rand.NewSource(41))
	base := signalsim.NewPoreModel()
	meth := abea.MethylatedModel(base)

	// A CpG-island-like region: random backbone with CpG sites planted
	// every ~60 bases.
	seq := genome.Random(rng, 1200)
	var cpgSites []int
	for i := 30; i+1 < len(seq)-30; i += 60 {
		seq[i], seq[i+1] = genome.C, genome.G
		cpgSites = append(cpgSites, i)
	}
	fmt.Printf("region: %d bases, %d planted CpG sites\n", len(seq), len(cpgSites))

	simCfg := signalsim.DefaultConfig()
	simCfg.NoiseScale = 0.6
	cfg := abea.DefaultConfig()
	const threshold = 2.0

	// Read 1: fully methylated molecule.
	evMeth := signalsim.Simulate(rng, meth, seq, simCfg)
	callsM := abea.CallMethylation(base, meth, seq, evMeth, cfg, threshold)
	// Read 2: unmethylated molecule.
	evUn := signalsim.Simulate(rng, base, seq, simCfg)
	callsU := abea.CallMethylation(base, meth, seq, evUn, cfg, threshold)

	tpM, total := 0, 0
	var sumLLR float64
	for _, c := range callsM {
		total++
		sumLLR += float64(c.LogLikRatio)
		if c.Methylated {
			tpM++
		}
	}
	fmt.Printf("methylated read:   %d/%d sites called methylated (mean LLR %+.1f)\n",
		tpM, total, sumLLR/float64(total))

	fpU, totalU := 0, 0
	sumLLR = 0
	for _, c := range callsU {
		totalU++
		sumLLR += float64(c.LogLikRatio)
		if c.Methylated {
			fpU++
		}
	}
	fmt.Printf("unmethylated read: %d/%d sites falsely called (mean LLR %+.1f)\n",
		fpU, totalU, sumLLR/float64(totalU))

	if tpM*2 > total && fpU*4 < totalU {
		fmt.Println("verdict: event-level methylation signal cleanly separated")
	} else {
		fmt.Println("verdict: separation weak — try lowering signal noise")
	}
}
