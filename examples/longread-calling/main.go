// Long-read variant calling: the Medaka/Clair path end to end.
//
// Noisy long reads from a donor genome are mapped to the reference
// with the minimizer+chaining mapper (chain kernel), aligned base-level
// with banded Smith-Waterman traceback (bsw kernel) to produce CIGARs,
// piled up per reference position (pileup kernel), and variant
// candidates are called by the BiLSTM network (nn-variant kernel) and
// written as VCF.
//
// Run: go run ./examples/longread-calling
package main

import (
	"fmt"
	"math/rand"
	"os"

	"repro/internal/bsw"
	"repro/internal/chain"
	"repro/internal/genome"
	"repro/internal/nnvariant"
	"repro/internal/pileup"
	"repro/internal/readsim"
	"repro/internal/simio"
)

const refLen = 20_000

func main() {
	rng := rand.New(rand.NewSource(51))
	ref := genome.NewReference(rng, "chr20", refLen, 0.05)
	donor := genome.PlantVariants(rng, ref, 0.001, 0)
	fmt.Printf("reference %d bp, donor carries %d variants\n", refLen, len(donor.Variants))

	// Long reads from both haplotypes.
	sim := readsim.New(52)
	lcfg := readsim.DefaultLong()
	lcfg.MeanLength = 3000
	lcfg.ErrorRate = 0.05
	var reads []readsim.Read
	reads = append(reads, sim.LongReads(donor.Haps[0], 0, 60, lcfg, "h0-")...)
	reads = append(reads, sim.LongReads(donor.Haps[1], 1, 60, lcfg, "h1-")...)
	fmt.Printf("simulated %d long reads (~%.0fx)\n", len(reads), avgCoverage(reads))

	// Map and base-align each read.
	mapper := chain.NewMapper(ref.Seq, 15, 10, 100)
	ccfg := chain.DefaultConfig()
	params := bsw.DefaultParams()
	params.Band = 200
	params.ZDrop = 0
	var alignments []*simio.Alignment
	for _, r := range reads {
		maps := mapper.Map(r.Seq, ccfg)
		if len(maps) == 0 {
			continue
		}
		best := maps[0]
		query := r.Seq
		if best.Reverse {
			query = r.Seq.ReverseComplement()
		}
		lo := best.RefStart - 100
		if lo < 0 {
			lo = 0
		}
		hi := best.RefEnd + 100
		if hi > refLen {
			hi = refLen
		}
		tr := bsw.AlignTrace(query, ref.Seq[lo:hi], params)
		if len(tr.Cigar) == 0 {
			continue
		}
		aln := &simio.Alignment{
			ReadName: r.Name,
			RefName:  ref.Name,
			Pos:      lo + tr.TBeg,
			MapQ:     60,
			Cigar:    clipCigar(tr, len(query)),
			Seq:      query,
			Reverse:  best.Reverse,
		}
		if err := aln.Validate(); err != nil {
			continue
		}
		alignments = append(alignments, aln)
	}
	fmt.Printf("aligned %d/%d reads\n", len(alignments), len(reads))

	// Persist a SAM file (demonstrating the interchange format).
	if f, err := os.CreateTemp("", "longread-*.sam"); err == nil {
		if err := simio.WriteSAM(f, []simio.FastaRecord{{Name: ref.Name, Seq: ref.Seq}}, alignments); err == nil {
			fmt.Printf("wrote %s\n", f.Name())
		}
		f.Close()
	}

	// Pileup + network calling + VCF.
	regions := pileup.SplitRegions(refLen, alignments, 10_000)
	model := nnvariant.NewModel(53, nnvariant.DefaultConfig())
	records, evals := nnvariant.CallAll(model, ref.Name, ref.Seq, regions, 8, 0.25)
	fmt.Printf("network evaluated %d candidate sites, emitted %d VCF records\n", evals, len(records))

	// Candidate recall vs planted truth (the untrained network's
	// genotype head is random; candidate selection is the measurable
	// part).
	candidatePositions := map[int]bool{}
	for _, rg := range regions {
		counts, _ := pileup.CountRegion(rg)
		for _, p := range nnvariant.SelectCandidates(counts, ref.Seq, rg.Start, 8, 0.25) {
			candidatePositions[rg.Start+p] = true
		}
	}
	recovered := 0
	for _, v := range donor.Variants {
		for d := -2; d <= 2; d++ {
			if candidatePositions[v.Pos+d] {
				recovered++
				break
			}
		}
	}
	fmt.Printf("candidate recall: %d/%d planted variants surfaced as candidates\n",
		recovered, len(donor.Variants))
	if err := simio.WriteVCF(os.Stdout, "donor", firstN(records, 5)); err != nil {
		fmt.Fprintln(os.Stderr, err)
	}
}

// clipCigar soft-clips any unaligned read prefix/suffix so the CIGAR
// consumes exactly the read.
func clipCigar(tr bsw.TraceResult, readLen int) simio.Cigar {
	var c simio.Cigar
	if tr.QBeg > 0 {
		c = append(c, simio.CigarElem{Len: tr.QBeg, Op: simio.CigarSoftClip})
	}
	c = append(c, tr.Cigar...)
	if tail := readLen - tr.QEnd; tail > 0 {
		c = append(c, simio.CigarElem{Len: tail, Op: simio.CigarSoftClip})
	}
	return c
}

func avgCoverage(reads []readsim.Read) float64 {
	total := 0
	for _, r := range reads {
		total += len(r.Seq)
	}
	return float64(total) / refLen
}

func firstN(records []simio.VCFRecord, n int) []simio.VCFRecord {
	if len(records) < n {
		return records
	}
	return records[:n]
}
