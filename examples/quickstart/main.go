// Quickstart: the reference-guided read-alignment path end to end.
//
// A reference genome is synthesized, short reads are simulated from it,
// the FM-index finds super-maximal exact match seeds for every read,
// and banded Smith-Waterman extends the best seed into a full
// alignment — the fmi + bsw kernels composed exactly as BWA-MEM2
// composes them.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/bsw"
	"repro/internal/fmindex"
	"repro/internal/genome"
	"repro/internal/readsim"
)

func main() {
	const refLen = 100_000
	const nReads = 200

	rng := rand.New(rand.NewSource(1))
	ref := genome.NewReference(rng, "chr1", refLen, 0.1)
	fmt.Printf("reference %s: %d bases\n", ref.Name, len(ref.Seq))

	index := fmindex.Build(ref.Seq)
	fmt.Printf("FM index built: %s\n", index)

	sim := readsim.New(2)
	reads := sim.ShortReads(ref.Seq, -1, nReads, readsim.DefaultShort(), "read")
	fmt.Printf("simulated %d Illumina-like reads (%d bp)\n", len(reads), len(reads[0].Seq))

	params := bsw.DefaultParams()
	var aligned, correct int
	var occLookups uint64
	for _, read := range reads {
		smems := index.FindSMEMs(read.Seq, 19, 1, &occLookups)
		if len(smems) == 0 {
			continue
		}
		// Pick the longest seed and locate it.
		best := smems[0]
		for _, m := range smems[1:] {
			if m.Len() > best.Len() {
				best = m
			}
		}
		positions := index.LocateAll(read.Seq[best.QBeg:best.QEnd], 4)
		if len(positions) == 0 {
			continue
		}
		pos := positions[0]
		strand := "+"
		if pos >= len(ref.Seq) {
			// Hit on the reverse-complement half of the FMD text.
			pos = 2*len(ref.Seq) - pos - best.Len()
			strand = "-"
		}
		// Extend the seed across the whole read with banded SW. On the
		// reverse strand the seed offset counts from the read's end.
		offset := best.QBeg
		if strand == "-" {
			offset = len(read.Seq) - best.QEnd
		}
		start := pos - offset - 10
		if start < 0 {
			start = 0
		}
		end := start + len(read.Seq) + 20
		if end > len(ref.Seq) {
			end = len(ref.Seq)
		}
		query := read.Seq
		if strand == "-" {
			query = read.Seq.ReverseComplement()
		}
		res := bsw.Align(query, ref.Seq[start:end], params)
		aligned++
		predicted := start
		if diff := predicted - read.RefPos; diff > -30 && diff < 30 {
			correct++
		}
		if aligned <= 5 {
			fmt.Printf("  %s: seed [%d,%d) x%d -> ref %d (%s), SW score %d\n",
				read.Name, best.QBeg, best.QEnd, best.Hits(), pos, strand, res.Score)
		}
	}
	if aligned == 0 {
		log.Fatal("no reads aligned")
	}
	fmt.Printf("aligned %d/%d reads, %d near the true origin, %d Occ lookups\n",
		aligned, len(reads), correct, occLookups)
}
