// Variant calling: the GATK-style short-read path.
//
// A donor genome with known planted variants is sequenced at 30x
// coverage; for each active region the reads are re-assembled into a
// De-Bruijn graph (dbg kernel) to produce candidate haplotypes, each
// read is scored against each haplotype with the PairHMM (phmm
// kernel), and genotypes are called from the likelihoods. Recall
// against the planted truth is reported.
//
// Run: go run ./examples/variantcalling
package main

import (
	"fmt"
	"math/rand"

	"repro/internal/dbg"
	"repro/internal/genome"
	"repro/internal/phmm"
	"repro/internal/readsim"
)

const (
	refLen     = 30_000
	regionSize = 400
	coverage   = 30
)

func main() {
	rng := rand.New(rand.NewSource(11))
	ref := genome.NewReference(rng, "chr22", refLen, 0)
	donor := genome.PlantVariants(rng, ref, 0.0015, 0.0003)
	fmt.Printf("reference %d bp, donor carries %d variants\n", refLen, len(donor.Variants))

	sim := readsim.New(12)
	cfg := readsim.DefaultShort()
	cfg.Length = 100
	reads := sim.CoverageReads(donor, coverage, cfg, "rd")
	fmt.Printf("simulated %d reads (~%.0fx coverage)\n", len(reads), float64(coverage))

	// Assign reads to regions by their true sampling position (a real
	// pipeline uses the aligner; quickstart shows that step).
	nRegions := refLen / regionSize
	regionReads := make([][]genome.Seq, nRegions)
	regionQuals := make([][][]byte, nRegions)
	for _, r := range reads {
		rg := r.RefPos / regionSize
		if rg >= nRegions {
			rg = nRegions - 1
		}
		seq := r.Seq
		if r.Reverse {
			seq = seq.ReverseComplement()
		}
		regionReads[rg] = append(regionReads[rg], seq)
		regionQuals[rg] = append(regionQuals[rg], r.Qual)
	}

	assemblyCfg := dbg.DefaultConfig()
	var calledVariant int
	var hetCalls, homCalls int
	calledRegions := map[int]bool{}
	for rg := 0; rg < nRegions; rg++ {
		start := rg * regionSize
		end := start + regionSize
		if end > refLen {
			end = refLen
		}
		region := &dbg.Region{Ref: ref.Seq[start:end], Reads: regionReads[rg]}
		asm := dbg.AssembleRegion(region, assemblyCfg)
		if len(asm.Haplotypes) < 2 {
			continue // no variant evidence assembled
		}
		// Score reads against haplotypes and genotype the region.
		ph := &phmm.Region{Reads: regionReads[rg], Quals: regionQuals[rg], Haps: asm.Haplotypes}
		res := phmm.EvaluateRegion(ph)
		support := make([]int, len(asm.Haplotypes))
		for _, h := range res.BestHap {
			support[h]++
		}
		// Call the two best-supported haplotypes as the genotype.
		best, second := -1, -1
		for h, s := range support {
			if best < 0 || s > support[best] {
				second = best
				best = h
			} else if second < 0 || s > support[second] {
				second = h
			}
		}
		refHap := -1
		for h, hap := range asm.Haplotypes {
			if hap.Equal(region.Ref) {
				refHap = h
			}
		}
		altCalled := best != refHap || (second >= 0 && second != refHap && support[second] >= len(ph.Reads)/4)
		if altCalled {
			calledVariant++
			calledRegions[rg] = true
			if best != refHap && (second == refHap || second < 0) {
				hetCalls++
			} else {
				homCalls++
			}
		}
	}

	// Recall: how many planted variants fall in a called region?
	var recovered int
	for _, v := range donor.Variants {
		if calledRegions[v.Pos/regionSize] {
			recovered++
		}
	}
	fmt.Printf("assembled %d regions with variant evidence (%d het-like, %d hom-like)\n",
		calledVariant, hetCalls, homCalls)
	fmt.Printf("recall: %d/%d planted variants fall in called regions (%.0f%%)\n",
		recovered, len(donor.Variants), 100*float64(recovered)/float64(len(donor.Variants)))
}
