// Variant calling: the GATK-style short-read path.
//
// A donor genome with known planted variants is sequenced at 30x
// coverage; reads stream through region binning, De-Bruijn assembly
// (dbg kernel), PairHMM scoring (phmm kernel) and genotype calling.
// The pipeline itself lives in the scenario registry
// (internal/scenario, "variantcalling"); this example is a thin
// wrapper that runs it fused (streaming, stage-overlapped) and staged
// (run-to-completion reference) and shows both agree bit for bit.
//
// Run: go run ./examples/variantcalling
package main

import (
	"context"
	"fmt"
	"os"

	"repro/internal/scenario"
	"repro/internal/scratch"
)

func main() {
	def := scenario.Get("variantcalling")
	p := def.Params.Clone()
	p["ref_len"] = 12_000 // demo scale
	pipe, err := def.Build(p)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("%s: %v\n\n", def.Title, def.Stages)

	opt := scenario.Options{Pool: scratch.NewPool()}
	staged, err := scenario.RunStaged(context.Background(), def.Name, pipe, opt)
	if err != nil {
		fmt.Fprintln(os.Stderr, "staged:", err)
		os.Exit(1)
	}
	fused, err := scenario.RunFused(context.Background(), def.Name, pipe, opt)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fused:", err)
		os.Exit(1)
	}
	fmt.Print(fused.Table())
	fmt.Printf("staged reference: %.1f ms, digest %016x (match: %v)\n\n",
		float64(staged.Elapsed.Nanoseconds())/1e6, staged.Digest, staged.Digest == fused.Digest)
	fmt.Println(pipe.Summary(fused.Final))
}
