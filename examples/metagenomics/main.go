// Metagenomics: abundance estimation against a pan-genome.
//
// A pan-genome FM-index is built over several synthetic "species"
// references; a read mixture with a known composition streams through
// SMEM seeding (fmi kernel) and locate-and-vote classification. The
// pipeline lives in the scenario registry (internal/scenario,
// "metagenomics"); this example runs it fused and staged and shows the
// digests agree.
//
// Run: go run ./examples/metagenomics
package main

import (
	"context"
	"fmt"
	"os"

	"repro/internal/scenario"
	"repro/internal/scratch"
)

func main() {
	def := scenario.Get("metagenomics")
	pipe, err := def.Build(def.Params)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("%s: %v\n\n", def.Title, def.Stages)

	opt := scenario.Options{Pool: scratch.NewPool()}
	staged, err := scenario.RunStaged(context.Background(), def.Name, pipe, opt)
	if err != nil {
		fmt.Fprintln(os.Stderr, "staged:", err)
		os.Exit(1)
	}
	fused, err := scenario.RunFused(context.Background(), def.Name, pipe, opt)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fused:", err)
		os.Exit(1)
	}
	fmt.Print(fused.Table())
	fmt.Printf("staged reference: %.1f ms, digest %016x (match: %v)\n\n",
		float64(staged.Elapsed.Nanoseconds())/1e6, staged.Digest, staged.Digest == fused.Digest)
	fmt.Println(pipe.Summary(fused.Final))
}
