// Metagenomics: abundance estimation against a pan-genome.
//
// A pan-genome index is built over several synthetic "species"
// references (the fmi kernel over a concatenated reference, as
// Centrifuge builds its index); a read mixture with a known species
// composition is classified by SMEM seeding, and the estimated
// abundances are compared to the truth.
//
// Run: go run ./examples/metagenomics
package main

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/fmindex"
	"repro/internal/genome"
	"repro/internal/readsim"
)

type species struct {
	name       string
	start, end int // span in the concatenated pan-genome
}

func main() {
	rng := rand.New(rand.NewSource(31))
	names := []string{"e.coli-like", "s.aureus-like", "virus-like", "fungus-like"}
	sizes := []int{60_000, 45_000, 8_000, 90_000}
	trueMix := []float64{0.45, 0.30, 0.15, 0.10}

	// Build the pan-genome: concatenated species references.
	var pan genome.Seq
	var catalog []species
	refs := make([]genome.Seq, len(names))
	for i, n := range names {
		ref := genome.NewReference(rng, n, sizes[i], 0.05)
		refs[i] = ref.Seq
		catalog = append(catalog, species{name: n, start: len(pan), end: len(pan) + sizes[i]})
		pan = append(pan, ref.Seq...)
	}
	index := fmindex.Build(pan)
	fmt.Printf("pan-genome: %d species, %d bases, %s\n", len(names), len(pan), index)

	// Simulate the read mixture.
	const totalReads = 600
	sim := readsim.New(32)
	cfg := readsim.DefaultLong()
	cfg.MeanLength = 1200
	cfg.ErrorRate = 0.08
	var reads []readWithTruth
	for i, frac := range trueMix {
		n := int(frac * totalReads)
		for _, r := range sim.LongReads(refs[i], -1, n, cfg, names[i]+"-") {
			reads = append(reads, readWithTruth{seq: r.Seq, truth: i})
		}
	}
	rng.Shuffle(len(reads), func(i, j int) { reads[i], reads[j] = reads[j], reads[i] })
	fmt.Printf("classifying %d reads\n", len(reads))

	// Classify: longest SMEM's locations vote for a species.
	counts := make([]int, len(names))
	correct, unclassified := 0, 0
	for _, r := range reads {
		smems := index.FindSMEMs(r.seq, 25, 1, nil)
		if len(smems) == 0 {
			unclassified++
			continue
		}
		sort.Slice(smems, func(i, j int) bool { return smems[i].Len() > smems[j].Len() })
		votes := make([]int, len(names))
		for _, m := range smems[:min(3, len(smems))] {
			for _, pos := range index.LocateAll(r.seq[m.QBeg:m.QEnd], 8) {
				if pos >= len(pan) {
					pos = 2*len(pan) - pos - m.Len() // reverse-strand hit
				}
				for si, sp := range catalog {
					if pos >= sp.start && pos < sp.end {
						votes[si] += m.Len()
					}
				}
			}
		}
		best, bestV := -1, 0
		for si, v := range votes {
			if v > bestV {
				best, bestV = si, v
			}
		}
		if best < 0 {
			unclassified++
			continue
		}
		counts[best]++
		if best == r.truth {
			correct++
		}
	}

	classified := len(reads) - unclassified
	fmt.Printf("accuracy: %d/%d reads correct, %d unclassified\n\n", correct, classified, unclassified)
	fmt.Printf("%-15s %-10s %-10s\n", "species", "true", "estimated")
	for i, n := range names {
		fmt.Printf("%-15s %-10.2f %-10.2f\n", n, trueMix[i], float64(counts[i])/float64(classified))
	}
}

type readWithTruth struct {
	seq   genome.Seq
	truth int
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
